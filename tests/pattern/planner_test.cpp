// Tests of the locality planner on multi-hop patterns: pointer chases
// (Fig. 5's general gather chains), pull-style actions, local-only actions,
// and the modify() general modification statement.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ampp/epoch.hpp"
#include "ampp/transport.hpp"
#include "graph/generators.hpp"
#include "obs/obs.hpp"
#include "pattern/action.hpp"

namespace dpg::pattern {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::vertex_id;

TEST(Planner, PointerChaseBuildsThreeLocalityChain) {
  // cc_jump-style: modify chg(v) after reading chg(pnt(v)) at a remote
  // vertex. Chain: v (gather pnt(v)) -> pnt(v) (gather chg(pnt(v))) ->
  // back to v (evaluate + modify). Two messages per application.
  const vertex_id n = 12;
  const auto edges = graph::path_graph(n);
  distributed_graph g(n, edges, distribution::cyclic(n, 3));
  pmap::vertex_property_map<vertex_id> pnt(g, graph::invalid_vertex);
  pmap::vertex_property_map<vertex_id> chg(g, graph::invalid_vertex);
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  ampp::transport tp(ampp::transport_config{.n_ranks = 3});

  property P(pnt), C(chg);
  auto jump = instantiate(tp, g, locks,
                          make_action("jump", no_generator{},
                                      when(C(P(v_)) < C(v_),
                                           assign(C(v_), C(P(v_))))));
  const plan_info& p = jump->plan();
  EXPECT_EQ(p.gather_hops, 2);   // v, then the chased vertex
  EXPECT_FALSE(p.final_merged);  // eval+modify returns to v
  // The chase value is gathered; the final step is still a single-value
  // min-update of chg(v), so the atomic fast path applies.
  EXPECT_TRUE(p.atomic_path);
  EXPECT_EQ(p.messages_per_application(), 2);

  // Semantics: one pointer-jump round. pnt(v) = v-1 (a chain), chg holds
  // "labels"; after applying jump at every vertex once, each chg(v) takes
  // its predecessor's (smaller) label when smaller.
  for (vertex_id v = 0; v < n; ++v) {
    pnt[v] = v == 0 ? 0 : v - 1;
    chg[v] = v;
  }
  tp.run([&](ampp::transport_context& ctx) {
    ampp::epoch ep(ctx);
    for (vertex_id v = 0; v < n; ++v)
      if (g.owner(v) == ctx.rank()) (*jump)(ctx, v);
  });
  // Every vertex v>0 saw chg(pnt(v)) at some state; at minimum it became
  // strictly smaller than v, and chg(0) stayed 0.
  EXPECT_EQ(chg[0], 0u);
  for (vertex_id v = 1; v < n; ++v) EXPECT_LT(chg[v], v);
}

TEST(Planner, RepeatedJumpRoundsConvergeToRoot) {
  // Applying the jump action until quiescence implements full pointer
  // jumping: all labels collapse to 0 in O(log n)-ish rounds.
  const vertex_id n = 33;
  const auto edges = graph::path_graph(n);
  distributed_graph g(n, edges, distribution::block(n, 4));
  pmap::vertex_property_map<vertex_id> pnt(g, 0);
  pmap::vertex_property_map<vertex_id> chg(g, 0);
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  ampp::transport tp(ampp::transport_config{.n_ranks = 4});
  property P(pnt), C(chg);
  auto jump = instantiate(tp, g, locks,
                          make_action("jump", no_generator{},
                                      when(C(P(v_)) < C(v_), assign(C(v_), C(P(v_))))));
  for (vertex_id v = 0; v < n; ++v) {
    pnt[v] = v == 0 ? 0 : v - 1;
    chg[v] = v;
  }
  tp.run([&](ampp::transport_context& ctx) {
    for (int round = 0; round < 64; ++round) {
      const std::uint64_t before = jump->modifications();
      {
        ampp::epoch ep(ctx);
        for (vertex_id v = 0; v < n; ++v)
          if (g.owner(v) == ctx.rank()) (*jump)(ctx, v);
      }
      // modifications() is globally consistent after the epoch ended.
      if (jump->modifications() == before) break;
    }
  });
  for (vertex_id v = 0; v < n; ++v) EXPECT_EQ(chg[v], 0u) << "v=" << v;
}

TEST(Planner, PullPatternGathersAtGeneratorTarget) {
  // Pull-style SSSP: read dist at the neighbour, modify at v. The
  // generator end is a gather hop; the final hop returns to v.
  const vertex_id n = 10;
  const auto edges = graph::symmetrize(graph::path_graph(n));
  distributed_graph g(n, edges, distribution::cyclic(n, 2));
  pmap::vertex_property_map<double> dmap(g, 1e18);
  pmap::edge_property_map<double> wmap(g, 1.0);
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  property dist(dmap);
  property weight(wmap);
  auto pull = instantiate(
      tp, g, locks,
      make_action("pull", out_edges_gen{},
                  when(dist(v_) > dist(trg(e_)) + weight(e_),
                       assign(dist(v_), dist(trg(e_)) + weight(e_)))));
  EXPECT_EQ(pull->plan().gather_hops, 2);  // v (weight), then trg (dist)
  EXPECT_EQ(pull->plan().messages_per_application(), 2);

  dmap[0] = 0.0;
  tp.run([&](ampp::transport_context& ctx) {
    // Two pull sweeps propagate distance 2 hops down the path.
    for (int sweep = 0; sweep < 2; ++sweep) {
      ampp::epoch ep(ctx);
      for (vertex_id v = 0; v < n; ++v)
        if (g.owner(v) == ctx.rank()) (*pull)(ctx, v);
    }
  });
  EXPECT_DOUBLE_EQ(dmap[1], 1.0);
  EXPECT_DOUBLE_EQ(dmap[2], 2.0);
}

TEST(Planner, FullyLocalActionSendsNoMessages) {
  // Modify at v from values at v: everything runs inline (merged final).
  const vertex_id n = 16;
  distributed_graph g(n, graph::path_graph(n), distribution::block(n, 2));
  pmap::vertex_property_map<std::uint64_t> a(g, 3), b(g, 0);
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  property A(a), B(b);
  auto local = instantiate(tp, g, locks,
                           make_action("double_it", no_generator{},
                                       when(B(v_) < A(v_) * lit<std::uint64_t>(2),
                                            assign(B(v_), A(v_) * lit<std::uint64_t>(2)))));
  EXPECT_EQ(local->plan().gather_hops, 1);
  EXPECT_TRUE(local->plan().final_merged);
  EXPECT_EQ(local->plan().messages_per_application(), 0);

  obs::stats_scope sc(tp.obs());
  tp.run([&](ampp::transport_context& ctx) {
    ampp::epoch ep(ctx);
    for (vertex_id v = 0; v < n; ++v)
      if (g.owner(v) == ctx.rank()) (*local)(ctx, v);
  });
  const obs::stats_snapshot& delta = sc.finish();
  EXPECT_EQ(delta.core.messages_sent, 0u);
  for (vertex_id v = 0; v < n; ++v) EXPECT_EQ(b[v], 6u);
}

TEST(Planner, ModifyStatementAccumulatesSets) {
  // preds[trg(e)].insert(src) — the grammar's general modification. The
  // set-valued map is modified at the owner; only vertex ids travel.
  const vertex_id n = 6;
  distributed_graph g(n, graph::star_graph(n), distribution::cyclic(n, 3));
  pmap::vertex_property_map<std::vector<vertex_id>> preds(g);
  pmap::vertex_property_map<int> mark(g, 0);
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  ampp::transport tp(ampp::transport_config{.n_ranks = 3});
  property M(mark);
  property P(preds);
  auto record = instantiate(
      tp, g, locks,
      make_action("record", out_edges_gen{},
                  when(M(trg(e_)) == lit(0),
                       modify(P(trg(e_)),
                              [](std::vector<vertex_id>& set, vertex_id u) {
                                set.push_back(u);
                              },
                              src(e_)))));
  tp.run([&](ampp::transport_context& ctx) {
    ampp::epoch ep(ctx);
    if (g.owner(0) == ctx.rank()) (*record)(ctx, 0);
  });
  for (vertex_id v = 1; v < n; ++v) {
    ASSERT_EQ(preds[v].size(), 1u) << "v=" << v;
    EXPECT_EQ(preds[v][0], 0u);
  }
  EXPECT_TRUE(preds[0].empty());
}

TEST(Planner, InEdgesGeneratorReadsMirrorWeights) {
  // Pull over in_edges: weight(e) for an in-edge is read at v through the
  // mirror copy; dist at the remote source is a final... no — modify at v,
  // read dist(src(e)) at the generator end.
  const vertex_id n = 8;
  const auto edges = graph::path_graph(n);  // v-1 -> v
  distributed_graph g(n, edges, distribution::cyclic(n, 2), /*bidirectional=*/true);
  pmap::vertex_property_map<double> dmap(g, 1e18);
  pmap::edge_property_map<double> wmap(g, 2.0);
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  property dist(dmap);
  property weight(wmap);
  auto pull = instantiate(
      tp, g, locks,
      make_action("pull_in", in_edges_gen{},
                  when(dist(v_) > dist(src(e_)) + weight(e_),
                       assign(dist(v_), dist(src(e_)) + weight(e_)))));
  dmap[0] = 0.0;
  tp.run([&](ampp::transport_context& ctx) {
    ampp::epoch ep(ctx);
    for (vertex_id v = 0; v < n; ++v)
      if (g.owner(v) == ctx.rank()) (*pull)(ctx, v);
  });
  EXPECT_DOUBLE_EQ(dmap[1], 2.0);  // one sweep pulls one hop
}

TEST(Planner, ArenaOverflowIsDetected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const vertex_id n = 4;
  distributed_graph g(n, graph::path_graph(n), distribution::block(n, 1));
  struct fat {
    double x[5];
    bool operator<(const fat& o) const { return x[0] < o.x[0]; }
  };
  pmap::vertex_property_map<fat> a(g), b(g), c(g);
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  auto build = [&] {
    ampp::transport tp(ampp::transport_config{.n_ranks = 1});
    property A(a), B(b), C(c);
    // 3 * 40 bytes of gathered state exceeds the 48-byte arena.
    auto act = instantiate(tp, g, locks,
                           make_action("fat", no_generator{},
                                       when(A(v_) < B(v_), assign(C(v_), B(v_)))));
  };
  // The plan-build diagnostic must name the offending action and both byte
  // counts, so the failure is actionable without a debugger.
  EXPECT_DEATH(build(), "arena overflow compiling action 'fat'");
  EXPECT_DEATH(build(), "80 bytes but gather_state::arena_bytes is 48");
}

TEST(Planner, ArenaExactlyFullCompiles) {
  // The boundary case: gathered reads summing to exactly arena_bytes (48)
  // must compile — overflow means strictly greater, not equal.
  const vertex_id n = 4;
  distributed_graph g(n, graph::path_graph(n), distribution::block(n, 1));
  struct trio {
    double x[2];
    bool operator<(const trio& o) const { return x[0] < o.x[0]; }
  };
  pmap::vertex_property_map<trio> a(g), b(g), c(g);
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  ampp::transport tp(ampp::transport_config{.n_ranks = 1});
  property A(a), B(b), C(c);
  // Three distinct 16-byte reads fill the 48-byte arena to the brim.
  auto act = instantiate(tp, g, locks,
                         make_action("brim", no_generator{},
                                     when(A(v_) < B(v_), assign(A(v_), C(v_)))));
  ASSERT_NE(act, nullptr);
  EXPECT_EQ(act->plan().arena_bytes, 48u);
}

}  // namespace
}  // namespace dpg::pattern
