// Generator coverage: every generator kind of the grammar (§III-C) drives
// a pattern correctly — out_edges and in_edges are covered throughout the
// suite; this file closes the gap for `adj` and the property-map set
// generator, and checks generator edge cases (empty fan-out, self-loops).
#include <gtest/gtest.h>

#include <vector>

#include "ampp/epoch.hpp"
#include "graph/generators.hpp"
#include "pattern/action.hpp"
#include "strategy/strategies.hpp"

namespace dpg::pattern {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::vertex_id;

TEST(Generators, AdjGeneratorVisitsOutNeighbours) {
  // Count-push via adj: each application adds 1 to every out-neighbour.
  const vertex_id n = 10;
  distributed_graph g(n, graph::star_graph(n), distribution::cyclic(n, 3));
  pmap::vertex_property_map<std::uint64_t> hits(g, 0);
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  ampp::transport tp(ampp::transport_config{.n_ranks = 3});
  property H(hits);
  auto mark = instantiate(tp, g, locks,
                          make_action("mark", adj_gen{},
                                      when(H(u_) < H(u_) + lit<std::uint64_t>(1),
                                           assign(H(u_), H(u_) + lit<std::uint64_t>(1)))));
  tp.run([&](ampp::transport_context& ctx) {
    ampp::epoch ep(ctx);
    if (g.owner(0) == ctx.rank()) {
      (*mark)(ctx, 0);
      (*mark)(ctx, 0);
    }
  });
  EXPECT_EQ(hits[0], 0u);
  for (vertex_id v = 1; v < n; ++v) EXPECT_EQ(hits[v], 2u) << "v=" << v;
}

TEST(Generators, AdjPlanTargetsGeneratedVertex) {
  const vertex_id n = 6;
  distributed_graph g(n, graph::cycle_graph(n), distribution::block(n, 2));
  pmap::vertex_property_map<double> a(g, 0.0), b(g, 1.0);
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  property A(a);
  property B(b);
  auto act = instantiate(tp, g, locks,
                         make_action("push", adj_gen{},
                                     when(A(u_) < B(v_), assign(A(u_), B(v_)))));
  EXPECT_EQ(act->plan().gather_hops, 1);
  EXPECT_EQ(act->plan().messages_per_application(), 1);
  EXPECT_TRUE(act->plan().atomic_path);  // single-value max-update on double
}

TEST(Generators, PmapSetGeneratorFansOutOverStoredVertices) {
  // Each vertex stores an explicit "followers" list; the action pushes a
  // flag to every follower — communication follows data, not topology.
  const vertex_id n = 8;
  distributed_graph g(n, graph::path_graph(n), distribution::cyclic(n, 2));
  pmap::vertex_property_map<std::vector<vertex_id>> followers(g);
  pmap::vertex_property_map<std::uint32_t> flag(g, 0);
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  followers[0] = {3, 5, 7};  // unrelated to graph edges
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  property F(flag);
  auto notify = instantiate(
      tp, g, locks,
      make_action("notify", pmap_gen<pmap::vertex_property_map<std::vector<vertex_id>>>{
                                &followers},
                  when(F(u_) == lit<std::uint32_t>(0),
                       assign(F(u_), lit<std::uint32_t>(1)))));
  tp.run([&](ampp::transport_context& ctx) {
    ampp::epoch ep(ctx);
    if (g.owner(0) == ctx.rank()) (*notify)(ctx, 0);
  });
  EXPECT_EQ(flag[3], 1u);
  EXPECT_EQ(flag[5], 1u);
  EXPECT_EQ(flag[7], 1u);
  EXPECT_EQ(flag[1], 0u);
  EXPECT_EQ(flag[2], 0u);
}

TEST(Generators, EmptyFanOutIsANoop) {
  const vertex_id n = 4;
  distributed_graph g(n, graph::star_graph(n), distribution::block(n, 1));
  pmap::vertex_property_map<double> x(g, 0.0);
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  ampp::transport tp(ampp::transport_config{.n_ranks = 1});
  property X(x);
  auto act = instantiate(tp, g, locks,
                         make_action("a", out_edges_gen{},
                                     when(X(trg(e_)) < lit(1.0), assign(X(trg(e_)), lit(1.0)))));
  tp.run([&](ampp::transport_context& ctx) {
    ampp::epoch ep(ctx);
    (*act)(ctx, 3);  // leaf: no out-edges
  });
  EXPECT_EQ(act->invocations(), 1u);
  EXPECT_EQ(act->modifications(), 0u);
}

TEST(Generators, SelfLoopDeliversToSelf) {
  std::vector<graph::edge> edges{{2, 2}};
  distributed_graph g(4, edges, distribution::cyclic(4, 2));
  pmap::vertex_property_map<std::uint64_t> x(g, 0);
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  property X(x);
  auto act = instantiate(
      tp, g, locks,
      make_action("loop", out_edges_gen{},
                  when(X(trg(e_)) < X(v_) + lit<std::uint64_t>(1),
                       assign(X(trg(e_)), X(v_) + lit<std::uint64_t>(1)))));
  tp.run([&](ampp::transport_context& ctx) {
    ampp::epoch ep(ctx);
    if (g.owner(2) == ctx.rank()) (*act)(ctx, 2);
  });
  EXPECT_EQ(x[2], 1u);  // one application: 0 -> 1; no runaway self-feeding
}


TEST(Generators, EdgePropertyAsModificationTarget) {
  // Edge property maps can be written by patterns too: the target edge's
  // authoritative copy lives at owner(src) == owner(v) for out-edges, so
  // the plan is fully local (merged, zero messages).
  const vertex_id n = 6;
  distributed_graph g(n, graph::cycle_graph(n), distribution::cyclic(n, 2));
  pmap::edge_property_map<double> w(g, 10.0);
  pmap::vertex_property_map<double> scale(g, 0.5);
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  property W(w);
  property S(scale);
  auto rescale = instantiate(
      tp, g, locks,
      make_action("rescale", out_edges_gen{},
                  when(W(e_) > S(v_) * lit(10.0), assign(W(e_), S(v_) * lit(10.0)))));
  EXPECT_EQ(rescale->plan().gather_hops, 1);
  EXPECT_TRUE(rescale->plan().final_merged);
  EXPECT_EQ(rescale->plan().messages_per_application(), 0);
  tp.run([&](ampp::transport_context& ctx) {
    ampp::epoch ep(ctx);
    strategy::for_each_local_vertex(ctx, g, [&](vertex_id v) { (*rescale)(ctx, v); });
  });
  for (vertex_id v = 0; v < n; ++v)
    for (const graph::edge_handle e : g.out_edges(v)) EXPECT_DOUBLE_EQ(w[e], 5.0);
}

}  // namespace
}  // namespace dpg::pattern
