// Tests of the plan introspection ("explain") facility — the textual
// reproduction of the paper's Figs. 5/6 communication diagrams.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "pattern/action.hpp"
#include "pattern/fuse.hpp"

namespace dpg::pattern {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::vertex_id;

struct world {
  distributed_graph g;
  pmap::vertex_property_map<double> dist;
  pmap::edge_property_map<double> weight;
  pmap::vertex_property_map<vertex_id> pnt, chg;
  pmap::lock_map locks;
  ampp::transport tp;

  world()
      : g(8, graph::path_graph(8), distribution::cyclic(8, 2)),
        dist(g, 1e100),
        weight(g, 1.0),
        pnt(g, 0),
        chg(g, 0),
        locks(g.dist(), pmap::lock_scheme::per_vertex),
        tp(ampp::transport_config{.n_ranks = 2}) {}
};

TEST(Explain, SsspPlanReadsLikeFigureSix) {
  world w;
  property d(w.dist);
  property wt(w.weight);
  auto relax = instantiate(w.tp, w.g, w.locks,
                           make_action("relax", out_edges_gen{},
                                       when(d(trg(e_)) > d(v_) + wt(e_),
                                            assign(d(trg(e_)), d(v_) + wt(e_)))));
  const std::string text = explain(relax->name(), relax->plan());
  EXPECT_NE(text.find("action relax"), std::string::npos);
  EXPECT_NE(text.find("hop 0 at v (invocation site): 2 read(s)"), std::string::npos);
  EXPECT_NE(text.find("final at trg(e)"), std::string::npos);
  EXPECT_NE(text.find("atomic compare-and-update"), std::string::npos);
  EXPECT_NE(text.find("dependencies: yes"), std::string::npos);
  EXPECT_NE(text.find("messages per application: 1"), std::string::npos);
}

TEST(Explain, PointerChasePlanShowsTheChain) {
  world w;
  property P(w.pnt);
  property C(w.chg);
  auto jump = instantiate(w.tp, w.g, w.locks,
                          make_action("jump", no_generator{},
                                      when(C(P(v_)) < C(v_), assign(C(v_), C(P(v_))))));
  const std::string text = explain(jump->name(), jump->plan());
  EXPECT_NE(text.find("hop 0 at v"), std::string::npos);
  EXPECT_NE(text.find("hop 1 at chase (gather message)"), std::string::npos);
  EXPECT_NE(text.find("final at v (evaluate+modify message)"), std::string::npos);
  EXPECT_NE(text.find("messages per application: 2"), std::string::npos);
}

TEST(Explain, LocalPlanShowsMergeAndNoMessages) {
  world w;
  property d(w.dist);
  auto local = instantiate(w.tp, w.g, w.locks,
                           make_action("bump", no_generator{},
                                       when(d(v_) < lit(1.0), assign(d(v_), lit(1.0)))));
  const std::string text = explain(local->name(), local->plan());
  EXPECT_NE(text.find("merged into the last gather hop"), std::string::npos);
  EXPECT_NE(text.find("messages per application: 0"), std::string::npos);
  EXPECT_NE(text.find("dependencies: yes"), std::string::npos);  // reads+writes d
}

TEST(Explain, NoDependencyWhenWrittenMapNeverRead) {
  world w;
  property d(w.dist);
  property c(w.chg);
  auto act = instantiate(w.tp, w.g, w.locks,
                         make_action("mark", no_generator{},
                                     when(d(v_) < lit(1.0),
                                          assign(c(v_), lit<vertex_id>(7)))));
  EXPECT_FALSE(act->plan().has_dependencies);
  const std::string text = explain(act->name(), act->plan());
  EXPECT_NE(text.find("dependencies: none"), std::string::npos);
}

TEST(Explain, CompiledPlanShowsWireBytesCseAndFastPath) {
  // The compilation pass is introspectable: explain() must print the wire
  // footprint of every synthesized message, the gather-read CSE count, and
  // whether the single-locality fast kernel engaged.
  world w;
  property d(w.dist);
  property wt(w.weight);
  auto mk = [&](compile_options opts) {
    return instantiate(w.tp, w.g, w.locks,
                       make_action("relax", out_edges_gen{},
                                   when(d(trg(e_)) > d(v_) + wt(e_),
                                        assign(d(trg(e_)), d(v_) + wt(e_)))),
                       opts);
  };
  using tog = compile_options::toggle;

  const std::string fast =
      explain("relax", mk({.fast_path = tog::on, .compact_wire = tog::on})->plan());
  EXPECT_NE(fast.find("compiled wire payloads: relax=16B"), std::string::npos);
  EXPECT_NE(fast.find("(full gather_state = 96B)"), std::string::npos);
  EXPECT_NE(fast.find("gather read CSE: 2 shared slot(s)"), std::string::npos);
  EXPECT_NE(fast.find("fast path: compiled single-locality relax kernel"),
            std::string::npos);
  EXPECT_NE(fast.find("batch kernel: whole-envelope SIMD relax"), std::string::npos);
  EXPECT_NE(fast.find("sender reduction: combining cache on the relax lane"),
            std::string::npos);

  const std::string general =
      explain("relax", mk({.fast_path = tog::off, .compact_wire = tog::on})->plan());
  EXPECT_NE(general.find("compiled wire payloads: eval=24B"), std::string::npos);
  EXPECT_NE(general.find("fast path: off"), std::string::npos);
  EXPECT_NE(general.find("batch kernel: off"), std::string::npos);
  EXPECT_NE(general.find("sender reduction: off"), std::string::npos);

  // Batching can be held off independently of the fast path (and the
  // sender-side combining cache stays on).
  const std::string nobatch = explain(
      "relax",
      mk({.fast_path = tog::on, .batch_kernel = tog::off})->plan());
  EXPECT_NE(nobatch.find("fast path: compiled single-locality relax kernel"),
            std::string::npos);
  EXPECT_NE(nobatch.find("batch kernel: off"), std::string::npos);
  EXPECT_NE(nobatch.find("sender reduction: combining cache on the relax lane"),
            std::string::npos);

  // ... and vice versa: no combining cache, batching untouched.
  const std::string noreduce = explain(
      "relax",
      mk({.fast_path = tog::on, .fast_reduction = tog::off})->plan());
  EXPECT_NE(noreduce.find("batch kernel: whole-envelope SIMD relax"),
            std::string::npos);
  EXPECT_NE(noreduce.find("sender reduction: off"), std::string::npos);

  const std::string full =
      explain("relax", mk({.fast_path = tog::off, .compact_wire = tog::off})->plan());
  EXPECT_NE(full.find("compiled wire payloads: eval=96B"), std::string::npos);
}

TEST(Explain, FullyLocalPlanHasNoWirePayloads) {
  world w;
  property d(w.dist);
  auto local = instantiate(w.tp, w.g, w.locks,
                           make_action("bump", no_generator{},
                                       when(d(v_) < lit(1.0), assign(d(v_), lit(1.0)))));
  const std::string text = explain(local->name(), local->plan());
  EXPECT_NE(text.find("compiled wire payloads: none (fully local)"), std::string::npos);
}

TEST(Explain, FusedPlanShowsWireLayoutAndGroupDispatch) {
  // The fusion analogue of explain(): the packed fused wire layout —
  // shared addressing bytes, each member's live slot, the per-hop fused
  // payload vs the separate-record sum — plus the group-dispatch and
  // shared-fixed-point summary.
  world w;
  pmap::vertex_property_map<double> width(w.g, 0.0);
  pmap::vertex_property_map<std::uint64_t> depth(w.g, 8);
  pmap::edge_property_map<double> cap(w.g, 2.0);
  property d(w.dist);
  property wt(w.weight);
  property wd(width);
  property dep(depth);
  property cp(cap);
  auto fused = fuse(
      w.tp, w.g, compile_options{},
      make_action("sssp.relax", out_edges_gen{},
                  when(d(trg(e_)) > d(v_) + wt(e_),
                       assign(d(trg(e_)), d(v_) + wt(e_)))),
      make_action("widest.relax", out_edges_gen{},
                  when(wd(trg(e_)) < min_(wd(v_), cp(e_)),
                       assign(wd(trg(e_)), min_(wd(v_), cp(e_))))),
      make_action("bfs.explore", out_edges_gen{},
                  when(dep(trg(e_)) > dep(v_) + lit<std::uint64_t>(1),
                       assign(dep(trg(e_)), dep(v_) + lit<std::uint64_t>(1)))));
  const std::string text = explain_fused(*fused);
  EXPECT_NE(text.find("fused family sssp.relax+widest.relax+bfs.explore"),
            std::string::npos);
  EXPECT_NE(text.find("members: 3 single-locality relax patterns"), std::string::npos);
  EXPECT_NE(text.find("shared addressing: 8B (target vertex, sent once per record)"),
            std::string::npos);
  EXPECT_NE(text.find("member 0 sssp.relax: live slot @8B +8B f64 min-update"),
            std::string::npos);
  EXPECT_NE(text.find("member 1 widest.relax: live slot @16B +8B f64 max-update"),
            std::string::npos);
  EXPECT_NE(text.find("member 2 bfs.explore: live slot @24B +8B u64 min-update"),
            std::string::npos);
  EXPECT_NE(text.find("per-hop fused payload: 32B (vs 48B as separate records)"),
            std::string::npos);
  EXPECT_NE(text.find("group dispatch: fused lane for multi-member waves"),
            std::string::npos);
  EXPECT_NE(text.find("fixed point: one epoch loop, one termination detection "
                      "for 3 members"),
            std::string::npos);

  // The plan_info mirrors the fused shape: the fused family IS the fast
  // path, one condition per member, wire bytes for the fused record plus
  // each member's solo lane.
  const plan_info& p = fused->plan();
  EXPECT_TRUE(p.fast_path);
  EXPECT_TRUE(p.atomic_path);
  EXPECT_EQ(p.conditions, 3);
  EXPECT_TRUE(p.has_dependencies);
  ASSERT_EQ(p.wire_bytes.size(), 4u);
  EXPECT_EQ(p.wire_bytes[0], 32u);
  EXPECT_EQ(p.wire_bytes[1], 16u);
  EXPECT_EQ(p.wire_bytes[2], 16u);
  EXPECT_EQ(p.wire_bytes[3], 16u);

  // Toggled-off batch/reduction renders as off (the environment default
  // path is covered above via the default compile_options).
  pmap::vertex_property_map<double> dist2(w.g, 1e100);
  pmap::vertex_property_map<double> width2(w.g, 0.0);
  property d2(dist2);
  property wd2(width2);
  using tog = compile_options::toggle;
  auto off = fuse(
      w.tp, w.g,
      compile_options{.batch_kernel = tog::off, .fast_reduction = tog::off},
      make_action("a", out_edges_gen{},
                  when(d2(trg(e_)) > d2(v_) + wt(e_),
                       assign(d2(trg(e_)), d2(v_) + wt(e_)))),
      make_action("b", out_edges_gen{},
                  when(wd2(trg(e_)) < min_(wd2(v_), cp(e_)),
                       assign(wd2(trg(e_)), min_(wd2(v_), cp(e_))))));
  const std::string offtext = explain_fused(*off);
  EXPECT_NE(offtext.find("batch kernel: off"), std::string::npos);
  EXPECT_NE(offtext.find("sender reduction: off"), std::string::npos);
  EXPECT_NE(offtext.find("for 2 members"), std::string::npos);
}

TEST(Explain, PlanInfoCountsConditions) {
  world w;
  property d(w.dist);
  auto act = instantiate(
      w.tp, w.g, w.locks,
      make_action("two_arm", out_edges_gen{},
                  when(d(trg(e_)) > d(v_), assign(d(trg(e_)), d(v_))),
                  when(d(trg(e_)) < lit(0.0), assign(d(trg(e_)), lit(0.0)))));
  EXPECT_EQ(act->plan().conditions, 2);
}

}  // namespace
}  // namespace dpg::pattern
