// Tests of the plan introspection ("explain") facility — the textual
// reproduction of the paper's Figs. 5/6 communication diagrams.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "pattern/action.hpp"

namespace dpg::pattern {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::vertex_id;

struct world {
  distributed_graph g;
  pmap::vertex_property_map<double> dist;
  pmap::edge_property_map<double> weight;
  pmap::vertex_property_map<vertex_id> pnt, chg;
  pmap::lock_map locks;
  ampp::transport tp;

  world()
      : g(8, graph::path_graph(8), distribution::cyclic(8, 2)),
        dist(g, 1e100),
        weight(g, 1.0),
        pnt(g, 0),
        chg(g, 0),
        locks(g.dist(), pmap::lock_scheme::per_vertex),
        tp(ampp::transport_config{.n_ranks = 2}) {}
};

TEST(Explain, SsspPlanReadsLikeFigureSix) {
  world w;
  property d(w.dist);
  property wt(w.weight);
  auto relax = instantiate(w.tp, w.g, w.locks,
                           make_action("relax", out_edges_gen{},
                                       when(d(trg(e_)) > d(v_) + wt(e_),
                                            assign(d(trg(e_)), d(v_) + wt(e_)))));
  const std::string text = explain(relax->name(), relax->plan());
  EXPECT_NE(text.find("action relax"), std::string::npos);
  EXPECT_NE(text.find("hop 0 at v (invocation site): 2 read(s)"), std::string::npos);
  EXPECT_NE(text.find("final at trg(e)"), std::string::npos);
  EXPECT_NE(text.find("atomic compare-and-update"), std::string::npos);
  EXPECT_NE(text.find("dependencies: yes"), std::string::npos);
  EXPECT_NE(text.find("messages per application: 1"), std::string::npos);
}

TEST(Explain, PointerChasePlanShowsTheChain) {
  world w;
  property P(w.pnt);
  property C(w.chg);
  auto jump = instantiate(w.tp, w.g, w.locks,
                          make_action("jump", no_generator{},
                                      when(C(P(v_)) < C(v_), assign(C(v_), C(P(v_))))));
  const std::string text = explain(jump->name(), jump->plan());
  EXPECT_NE(text.find("hop 0 at v"), std::string::npos);
  EXPECT_NE(text.find("hop 1 at chase (gather message)"), std::string::npos);
  EXPECT_NE(text.find("final at v (evaluate+modify message)"), std::string::npos);
  EXPECT_NE(text.find("messages per application: 2"), std::string::npos);
}

TEST(Explain, LocalPlanShowsMergeAndNoMessages) {
  world w;
  property d(w.dist);
  auto local = instantiate(w.tp, w.g, w.locks,
                           make_action("bump", no_generator{},
                                       when(d(v_) < lit(1.0), assign(d(v_), lit(1.0)))));
  const std::string text = explain(local->name(), local->plan());
  EXPECT_NE(text.find("merged into the last gather hop"), std::string::npos);
  EXPECT_NE(text.find("messages per application: 0"), std::string::npos);
  EXPECT_NE(text.find("dependencies: yes"), std::string::npos);  // reads+writes d
}

TEST(Explain, NoDependencyWhenWrittenMapNeverRead) {
  world w;
  property d(w.dist);
  property c(w.chg);
  auto act = instantiate(w.tp, w.g, w.locks,
                         make_action("mark", no_generator{},
                                     when(d(v_) < lit(1.0),
                                          assign(c(v_), lit<vertex_id>(7)))));
  EXPECT_FALSE(act->plan().has_dependencies);
  const std::string text = explain(act->name(), act->plan());
  EXPECT_NE(text.find("dependencies: none"), std::string::npos);
}

TEST(Explain, CompiledPlanShowsWireBytesCseAndFastPath) {
  // The compilation pass is introspectable: explain() must print the wire
  // footprint of every synthesized message, the gather-read CSE count, and
  // whether the single-locality fast kernel engaged.
  world w;
  property d(w.dist);
  property wt(w.weight);
  auto mk = [&](compile_options opts) {
    return instantiate(w.tp, w.g, w.locks,
                       make_action("relax", out_edges_gen{},
                                   when(d(trg(e_)) > d(v_) + wt(e_),
                                        assign(d(trg(e_)), d(v_) + wt(e_)))),
                       opts);
  };
  using tog = compile_options::toggle;

  const std::string fast =
      explain("relax", mk({.fast_path = tog::on, .compact_wire = tog::on})->plan());
  EXPECT_NE(fast.find("compiled wire payloads: relax=16B"), std::string::npos);
  EXPECT_NE(fast.find("(full gather_state = 96B)"), std::string::npos);
  EXPECT_NE(fast.find("gather read CSE: 2 shared slot(s)"), std::string::npos);
  EXPECT_NE(fast.find("fast path: compiled single-locality relax kernel"),
            std::string::npos);
  EXPECT_NE(fast.find("batch kernel: whole-envelope SIMD relax"), std::string::npos);
  EXPECT_NE(fast.find("sender reduction: combining cache on the relax lane"),
            std::string::npos);

  const std::string general =
      explain("relax", mk({.fast_path = tog::off, .compact_wire = tog::on})->plan());
  EXPECT_NE(general.find("compiled wire payloads: eval=24B"), std::string::npos);
  EXPECT_NE(general.find("fast path: off"), std::string::npos);
  EXPECT_NE(general.find("batch kernel: off"), std::string::npos);
  EXPECT_NE(general.find("sender reduction: off"), std::string::npos);

  // Batching can be held off independently of the fast path (and the
  // sender-side combining cache stays on).
  const std::string nobatch = explain(
      "relax",
      mk({.fast_path = tog::on, .batch_kernel = tog::off})->plan());
  EXPECT_NE(nobatch.find("fast path: compiled single-locality relax kernel"),
            std::string::npos);
  EXPECT_NE(nobatch.find("batch kernel: off"), std::string::npos);
  EXPECT_NE(nobatch.find("sender reduction: combining cache on the relax lane"),
            std::string::npos);

  // ... and vice versa: no combining cache, batching untouched.
  const std::string noreduce = explain(
      "relax",
      mk({.fast_path = tog::on, .fast_reduction = tog::off})->plan());
  EXPECT_NE(noreduce.find("batch kernel: whole-envelope SIMD relax"),
            std::string::npos);
  EXPECT_NE(noreduce.find("sender reduction: off"), std::string::npos);

  const std::string full =
      explain("relax", mk({.fast_path = tog::off, .compact_wire = tog::off})->plan());
  EXPECT_NE(full.find("compiled wire payloads: eval=96B"), std::string::npos);
}

TEST(Explain, FullyLocalPlanHasNoWirePayloads) {
  world w;
  property d(w.dist);
  auto local = instantiate(w.tp, w.g, w.locks,
                           make_action("bump", no_generator{},
                                       when(d(v_) < lit(1.0), assign(d(v_), lit(1.0)))));
  const std::string text = explain(local->name(), local->plan());
  EXPECT_NE(text.find("compiled wire payloads: none (fully local)"), std::string::npos);
}

TEST(Explain, PlanInfoCountsConditions) {
  world w;
  property d(w.dist);
  auto act = instantiate(
      w.tp, w.g, w.locks,
      make_action("two_arm", out_edges_gen{},
                  when(d(trg(e_)) > d(v_), assign(d(trg(e_)), d(v_))),
                  when(d(trg(e_)) < lit(0.0), assign(d(trg(e_)), lit(0.0)))));
  EXPECT_EQ(act->plan().conditions, 2);
}

}  // namespace
}  // namespace dpg::pattern
