// Unit tests of the expression layer: AST construction, value typing,
// operator evaluation, and compile-time locality classification.
#include "pattern/expr.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "pattern/planner.hpp"

namespace dpg::pattern {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::vertex_id;

TEST(Expr, ValueTypesArePropagated) {
  static_assert(std::is_same_v<value_t<v_expr>, vertex_id>);
  static_assert(std::is_same_v<value_t<e_expr>, graph::edge_handle>);
  static_assert(std::is_same_v<value_t<decltype(trg(e_))>, vertex_id>);
  static_assert(std::is_same_v<value_t<decltype(src(e_))>, vertex_id>);
  static_assert(std::is_same_v<value_t<decltype(lit(1.5))>, double>);
  static_assert(std::is_same_v<value_t<decltype(lit(1.5) + lit(2))>, double>);
  static_assert(std::is_same_v<value_t<decltype(lit(1) < lit(2))>, bool>);
  static_assert(std::is_same_v<value_t<decltype(!(lit(1) < lit(2)))>, bool>);
  SUCCEED();
}

TEST(Expr, ApplyOpSemantics) {
  EXPECT_EQ((apply_op<op_add>(2, 3)), 5);
  EXPECT_EQ((apply_op<op_sub>(2, 3)), -1);
  EXPECT_EQ((apply_op<op_mul>(2.5, 4.0)), 10.0);
  EXPECT_EQ((apply_op<op_div>(9, 2)), 4);
  EXPECT_TRUE((apply_op<op_lt>(1, 2)));
  EXPECT_FALSE((apply_op<op_gt>(1, 2)));
  EXPECT_TRUE((apply_op<op_le>(2, 2)));
  EXPECT_TRUE((apply_op<op_ge>(2, 2)));
  EXPECT_TRUE((apply_op<op_eq>(7, 7)));
  EXPECT_TRUE((apply_op<op_ne>(7, 8)));
  EXPECT_TRUE((apply_op<op_and>(true, true)));
  EXPECT_TRUE((apply_op<op_or>(false, true)));
  EXPECT_EQ((apply_op<op_min>(3, 5)), 3);
  EXPECT_EQ((apply_op<op_max>(3, 5)), 5);
  EXPECT_EQ((apply_op<op_min>(2.0, 1)), 1.0);
}

TEST(Expr, GatherStateArenaRoundTrips) {
  gather_state s;
  s.arena_put<double>(0, 3.25);
  s.arena_put<std::uint64_t>(8, 42);
  EXPECT_DOUBLE_EQ(s.arena_get<double>(0), 3.25);
  EXPECT_EQ(s.arena_get<std::uint64_t>(8), 42u);
}

TEST(Expr, CompiledExpressionsEvaluateAgainstState) {
  const vertex_id n = 4;
  distributed_graph g(n, graph::path_graph(n), distribution::block(n, 1));
  pmap::vertex_property_map<double> dmap(g, 0.0);
  dmap[2] = 7.5;
  property dist(dmap);

  plan_builder<out_edges_gen> pb;
  auto f = pb.compile(dist(v_) + lit(1.0));
  ASSERT_EQ(pb.steps().size(), 1u);

  gather_state s;
  s.v = 2;
  // Perform the (single) registered read, then evaluate.
  pb.steps()[0].perform(s);
  EXPECT_DOUBLE_EQ(f(s), 8.5);
}

TEST(Expr, DuplicateReadsShareOneArenaSlot) {
  const vertex_id n = 4;
  distributed_graph g(n, graph::path_graph(n), distribution::block(n, 1));
  pmap::vertex_property_map<double> dmap(g, 2.0);
  property dist(dmap);
  plan_builder<out_edges_gen> pb;
  auto f = pb.compile(dist(v_) + dist(v_) * dist(v_));
  EXPECT_EQ(pb.steps().size(), 1u);  // deduplicated
  EXPECT_EQ(pb.arena_used(), sizeof(double));
  gather_state s;
  s.v = 1;
  pb.steps()[0].perform(s);
  EXPECT_DOUBLE_EQ(f(s), 6.0);
}

TEST(Expr, DistinctMapsGetDistinctSlots) {
  const vertex_id n = 4;
  distributed_graph g(n, graph::path_graph(n), distribution::block(n, 1));
  pmap::vertex_property_map<double> a(g, 1.0), b(g, 2.0);
  property A(a), B(b);
  plan_builder<no_generator> pb;
  auto f = pb.compile(A(v_) + B(v_));
  EXPECT_EQ(pb.steps().size(), 2u);
  gather_state s;
  s.v = 0;
  for (auto& st : pb.steps()) st.perform(s);
  EXPECT_DOUBLE_EQ(f(s), 3.0);
}

TEST(Expr, HomeClassificationFollowsDefinitionOne) {
  static_assert(home_of<v_expr, out_edges_gen>::kind == home_kind::at_v);
  static_assert(home_of<e_expr, out_edges_gen>::kind == home_kind::at_v);
  static_assert(home_of<src_expr<e_expr>, out_edges_gen>::kind == home_kind::at_v);
  static_assert(home_of<trg_expr<e_expr>, out_edges_gen>::kind == home_kind::at_gen);
  static_assert(home_of<src_expr<e_expr>, in_edges_gen>::kind == home_kind::at_gen);
  static_assert(home_of<trg_expr<e_expr>, in_edges_gen>::kind == home_kind::at_v);
  static_assert(home_of<u_expr, adj_gen>::kind == home_kind::at_gen);
  using chase_idx =
      read_expr<pmap::vertex_property_map<vertex_id>, v_expr>;
  static_assert(home_of<chase_idx, no_generator>::kind == home_kind::chase);
  SUCCEED();
}

TEST(Expr, ReadsPmapTracksIdentity) {
  const vertex_id n = 4;
  distributed_graph g(n, graph::path_graph(n), distribution::block(n, 1));
  pmap::vertex_property_map<double> a(g), b(g);
  property A(a);
  plan_builder<no_generator> pb;
  (void)pb.compile(A(v_) > lit(0.0));
  EXPECT_TRUE(pb.reads_pmap(&a));
  EXPECT_FALSE(pb.reads_pmap(&b));
}

TEST(Expr, MinMaxExpressions) {
  plan_builder<no_generator> pb;
  auto f = pb.compile(min_(lit(4), lit(9)) + max_(lit(4), lit(9)));
  gather_state s;
  EXPECT_EQ(f(s), 13);
}

}  // namespace
}  // namespace dpg::pattern
