// Robustness fuzzing of the pattern parser: mutated and truncated inputs
// must never crash or hang — every failure mode is a parse_error.
#include <gtest/gtest.h>

#include <string>

#include "pattern/parse.hpp"
#include "util/rng.hpp"

namespace dpg::pattern::text {
namespace {

constexpr const char* kSeedSource = R"(
pattern SSSP {
  vertex_property<double> dist;
  edge_property<double> weight;
  vertex_property<vertex> pnt;
  action relax(v) {
    generator e : out_edges;
    alias d = dist[v] + weight[e];
    when (dist[trg(e)] > d) { dist[trg(e)] = d; pnt[trg(e)] = v; }
    when (pnt[trg(e)] == null_vertex) { pnt[trg(e)] = v; }
  }
}
)";

/// Either parses+analyzes cleanly or throws parse_error; anything else
/// (crash, other exception) fails the test.
void must_be_graceful(const std::string& source) {
  try {
    (void)analyze(parse_pattern(source));
  } catch (const parse_error&) {
    // fine
  }
}

TEST(ParseFuzz, SeedSourceIsValid) {
  EXPECT_NO_THROW(analyze(parse_pattern(kSeedSource)));
}

TEST(ParseFuzz, TruncationsNeverCrash) {
  const std::string src = kSeedSource;
  for (std::size_t len = 0; len <= src.size(); ++len)
    must_be_graceful(src.substr(0, len));
}

TEST(ParseFuzz, ByteMutationsNeverCrash) {
  const std::string base = kSeedSource;
  xoshiro256ss rng(0xf022);
  static constexpr char kNoise[] = "{}()[];:.<>=!&|+-*/ \nabz019_";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string s = base;
    const int mutations = 1 + static_cast<int>(rng.below(4));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.below(s.size());
      s[pos] = kNoise[rng.below(sizeof(kNoise) - 1)];
    }
    must_be_graceful(s);
  }
}

TEST(ParseFuzz, TokenDeletionsNeverCrash) {
  const std::string base = kSeedSource;
  xoshiro256ss rng(0xdead);
  for (int trial = 0; trial < 500; ++trial) {
    std::string s = base;
    const std::size_t start = rng.below(s.size());
    const std::size_t len = 1 + rng.below(12);
    s.erase(start, len);
    must_be_graceful(s);
  }
}

TEST(ParseFuzz, GarbageInputs) {
  must_be_graceful("");
  must_be_graceful("pattern");
  must_be_graceful("pattern {}");
  must_be_graceful("pattern P {}");
  must_be_graceful("][[[");
  must_be_graceful(std::string(10000, '('));
  must_be_graceful("pattern P { action a(v) { when (1 < 2) { } } }");
  must_be_graceful("pattern P { vertex_property<double> x; action a(v) { when (x[v] "
                   "< x[v]) { x[v] = x[x[x[v]]]; } } }");
}

}  // namespace
}  // namespace dpg::pattern::text
