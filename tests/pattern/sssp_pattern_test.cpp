// End-to-end test of the SSSP relax pattern (Fig. 2/4 of the paper) and of
// the synthesized communication plan (Fig. 6: one gather at v merged with
// evaluate+modify at trg(e)).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "ampp/epoch.hpp"
#include "ampp/transport.hpp"
#include "graph/generators.hpp"
#include "obs/obs.hpp"
#include "pattern/action.hpp"

namespace dpg::pattern {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;
using graph::vertex_id;

constexpr double kInf = std::numeric_limits<double>::infinity();

struct sssp_fixture {
  distributed_graph g;
  pmap::vertex_property_map<double> dist_map;
  pmap::edge_property_map<double> weight_map;
  pmap::lock_map locks;

  sssp_fixture(vertex_id n, const std::vector<graph::edge>& edges, ampp::rank_t ranks,
               double uniform_weight = 1.0)
      : g(n, edges, distribution::cyclic(n, ranks)),
        dist_map(g, kInf),
        weight_map(g, uniform_weight),
        locks(g.dist(), pmap::lock_scheme::per_vertex) {}
};

// Builds the relax action exactly as the paper's Fig. 2 writes it.
template <class Fixture>
auto make_relax(ampp::transport& tp, Fixture& fx) {
  property dist(fx.dist_map);
  property weight(fx.weight_map);
  return instantiate(tp, fx.g, fx.locks,
                     make_action("relax", out_edges_gen{},
                                 when(dist(trg(e_)) > dist(v_) + weight(e_),
                                      assign(dist(trg(e_)), dist(v_) + weight(e_)))));
}

TEST(SsspPattern, PlanMatchesFigureSix) {
  // Fig. 6: dist(v) and weight(e) are gathered locally at v (hop 0); no
  // separate gather message is needed at trg(e) — the read of dist(trg(e))
  // is deferred into the single evaluate+modify message, where it is
  // performed synchronized (atomics for double). Exactly one message per
  // generated edge.
  sssp_fixture fx(4, graph::path_graph(4), 2);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  auto relax = make_relax(tp, fx);
  const plan_info& p = relax->plan();
  EXPECT_EQ(p.gather_hops, 1);      // only the invocation site gathers
  EXPECT_FALSE(p.final_merged);     // the evaluate message crosses to trg(e)
  EXPECT_TRUE(p.atomic_path);
  EXPECT_EQ(p.final_reads, 1);      // dist(trg(e)), read under synchronization
  EXPECT_EQ(p.arena_bytes, 24u);    // dist(v) + weight(e) + slot for dist(trg(e))
  EXPECT_EQ(p.messages_per_application(), 1);
}

TEST(SsspPattern, RelaxUpdatesNeighbours) {
  // One application of relax at the source improves all direct neighbours.
  const vertex_id n = 5;
  sssp_fixture fx(n, graph::star_graph(n), 2, 3.0);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  auto relax = make_relax(tp, fx);
  fx.dist_map[0] = 0.0;
  tp.run([&](ampp::transport_context& ctx) {
    ampp::epoch ep(ctx);
    if (fx.g.owner(0) == ctx.rank()) (*relax)(ctx, 0);
  });
  for (vertex_id v = 1; v < n; ++v) EXPECT_DOUBLE_EQ(fx.dist_map[v], 3.0);
  EXPECT_EQ(relax->modifications(), n - 1);
  EXPECT_EQ(relax->invocations(), 1u);
}

TEST(SsspPattern, FixedPointViaWorkHookOnPath) {
  // The dependency hook re-invokes relax at every improved vertex: on a
  // path this walks the whole line within a single epoch.
  const vertex_id n = 50;
  sssp_fixture fx(n, graph::path_graph(n), 4, 2.0);
  ampp::transport tp(ampp::transport_config{.n_ranks = 4});
  auto relax = make_relax(tp, fx);
  relax->work([&](ampp::transport_context& ctx, vertex_id dep) { (*relax)(ctx, dep); });
  fx.dist_map[0] = 0.0;
  tp.run([&](ampp::transport_context& ctx) {
    ampp::epoch ep(ctx);
    if (fx.g.owner(0) == ctx.rank()) (*relax)(ctx, 0);
  });
  for (vertex_id v = 0; v < n; ++v) EXPECT_DOUBLE_EQ(fx.dist_map[v], 2.0 * v);
}

TEST(SsspPattern, NoImprovementMeansNoModification) {
  sssp_fixture fx(3, graph::path_graph(3), 1, 1.0);
  ampp::transport tp(ampp::transport_config{.n_ranks = 1});
  auto relax = make_relax(tp, fx);
  fx.dist_map[0] = 0.0;
  fx.dist_map[1] = 0.5;  // already better than 0 + 1.0
  tp.run([&](ampp::transport_context& ctx) {
    ampp::epoch ep(ctx);
    (*relax)(ctx, 0);
  });
  EXPECT_DOUBLE_EQ(fx.dist_map[1], 0.5);
  EXPECT_EQ(relax->modifications(), 0u);
}

TEST(SsspPattern, HookNotCalledWithoutDependencyFiring) {
  sssp_fixture fx(3, graph::path_graph(3), 1, 1.0);
  ampp::transport tp(ampp::transport_config{.n_ranks = 1});
  auto relax = make_relax(tp, fx);
  int hook_calls = 0;
  relax->work([&](ampp::transport_context&, vertex_id) { ++hook_calls; });
  fx.dist_map.fill(0.0);  // nothing can improve
  tp.run([&](ampp::transport_context& ctx) {
    ampp::epoch ep(ctx);
    (*relax)(ctx, 0);
  });
  EXPECT_EQ(hook_calls, 0);
}

TEST(SsspPattern, MessageCountMatchesPlan) {
  // Each relax application on a vertex of out-degree d must produce exactly
  // d payloads of the single synthesized message type.
  const vertex_id n = 8;
  sssp_fixture fx(n, graph::star_graph(n), 2, 1.0);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2, .coalescing_size = 4});
  auto relax = make_relax(tp, fx);
  fx.dist_map[0] = 0.0;
  obs::stats_scope sc(tp.obs());
  tp.run([&](ampp::transport_context& ctx) {
    ampp::epoch ep(ctx);
    if (fx.g.owner(0) == ctx.rank()) (*relax)(ctx, 0);
  });
  const obs::stats_snapshot& delta = sc.finish();
  EXPECT_EQ(delta.core.messages_sent, n - 1);  // one message per out-edge
}

TEST(SsspPattern, AtomicAndLockedPathsAgree) {
  // Force the locked path by adding a second condition arm (the atomic
  // shape requires exactly one when); results must be identical.
  const vertex_id n = 64;
  const auto edges = graph::erdos_renyi(n, 400, 17);
  auto run_variant = [&](bool locked) {
    sssp_fixture fx(n, edges, 3);
    fx.weight_map = pmap::edge_property_map<double>(fx.g, [](const edge_handle& e) {
      return graph::edge_weight(e.src, e.dst, 5, 9.0);
    });
    ampp::transport tp(ampp::transport_config{.n_ranks = 3});
    property dist(fx.dist_map);
    property weight(fx.weight_map);
    std::unique_ptr<action_instance> relax;
    if (locked) {
      // Semantically identical, but the two-arm shape disables atomics.
      auto a = instantiate(
          tp, fx.g, fx.locks,
          make_action("relax2", out_edges_gen{},
                      when(dist(trg(e_)) > dist(v_) + weight(e_),
                           assign(dist(trg(e_)), dist(v_) + weight(e_))),
                      when(lit(false), assign(dist(trg(e_)), lit(0.0)))));
      EXPECT_FALSE(a->plan().atomic_path);
      relax = std::move(a);
    } else {
      auto a = make_relax(tp, fx);
      EXPECT_TRUE(a->plan().atomic_path);
      relax = std::move(a);
    }
    relax->work([&](ampp::transport_context& ctx, vertex_id dep) { (*relax)(ctx, dep); });
    fx.dist_map[0] = 0.0;
    tp.run([&](ampp::transport_context& ctx) {
      ampp::epoch ep(ctx);
      if (fx.g.owner(0) == ctx.rank()) (*relax)(ctx, 0);
    });
    std::vector<double> out(n);
    for (vertex_id v = 0; v < n; ++v) out[v] = fx.dist_map[v];
    return out;
  };
  EXPECT_EQ(run_variant(false), run_variant(true));
}

TEST(SsspPattern, CompiledPathsAreBitIdentical) {
  // The fast single-locality relax kernel and the compact wire layout are
  // pure transport optimizations: forcing each toggle on and off must give
  // identical distances, down to the last bit, on an irregular graph with
  // distinct per-edge weights.
  const vertex_id n = 96;
  const auto edges = graph::erdos_renyi(n, 700, 29);
  using tog = compile_options::toggle;
  auto run_variant = [&](tog fast, tog compact) {
    sssp_fixture fx(n, edges, 3);
    fx.weight_map = pmap::edge_property_map<double>(fx.g, [](const edge_handle& e) {
      return graph::edge_weight(e.src, e.dst, 7, 3.0);
    });
    ampp::transport tp(ampp::transport_config{.n_ranks = 3});
    property dist(fx.dist_map);
    property weight(fx.weight_map);
    auto relax = instantiate(tp, fx.g, fx.locks,
                             make_action("relax", out_edges_gen{},
                                         when(dist(trg(e_)) > dist(v_) + weight(e_),
                                              assign(dist(trg(e_)), dist(v_) + weight(e_)))),
                             compile_options{.fast_path = fast, .compact_wire = compact});
    relax->work([&](ampp::transport_context& ctx, vertex_id dep) { (*relax)(ctx, dep); });
    fx.dist_map[0] = 0.0;
    tp.run([&](ampp::transport_context& ctx) {
      ampp::epoch ep(ctx);
      if (fx.g.owner(0) == ctx.rank()) (*relax)(ctx, 0);
    });
    std::vector<double> out(n);
    for (vertex_id v = 0; v < n; ++v) out[v] = fx.dist_map[v];
    return std::pair{out, relax->plan()};
  };
  const auto [fast_on, p_fast] = run_variant(tog::on, tog::on);
  const auto [fast_off, p_compact] = run_variant(tog::off, tog::on);
  const auto [full, p_full] = run_variant(tog::off, tog::off);

  EXPECT_TRUE(p_fast.fast_path);
  ASSERT_EQ(p_fast.wire_bytes.size(), 1u);
  EXPECT_EQ(p_fast.wire_bytes[0], 16u);  // {target vertex, candidate distance}
  EXPECT_FALSE(p_compact.fast_path);
  ASSERT_EQ(p_compact.wire_bytes.size(), 1u);
  EXPECT_EQ(p_compact.wire_bytes[0], 24u);  // trg(e) + dist(v) + weight(e)
  ASSERT_EQ(p_full.wire_bytes.size(), 1u);
  EXPECT_EQ(p_full.wire_bytes[0], sizeof(gather_state));

  EXPECT_EQ(fast_on, fast_off);
  EXPECT_EQ(fast_on, full);
}

TEST(SsspPattern, CompactWireReducesBytesOnTheWire) {
  // One relax at the hub of a star produces exactly n-1 payloads of the
  // synthesized type; the wire-byte counters must show each compilation
  // mode's per-payload footprint exactly.
  const vertex_id n = 32;
  using tog = compile_options::toggle;
  auto measure = [&](tog fast, tog compact) {
    sssp_fixture fx(n, graph::star_graph(n), 2, 1.0);
    ampp::transport tp(ampp::transport_config{.n_ranks = 2, .coalescing_size = 4});
    property dist(fx.dist_map);
    property weight(fx.weight_map);
    auto relax = instantiate(tp, fx.g, fx.locks,
                             make_action("relax", out_edges_gen{},
                                         when(dist(trg(e_)) > dist(v_) + weight(e_),
                                              assign(dist(trg(e_)), dist(v_) + weight(e_)))),
                             compile_options{.fast_path = fast, .compact_wire = compact});
    fx.dist_map[0] = 0.0;
    tp.run([&](ampp::transport_context& ctx) {
      ampp::epoch ep(ctx);
      if (fx.g.owner(0) == ctx.rank()) (*relax)(ctx, 0);
    });
    std::uint64_t wire = 0;
    for (const obs::type_counters& t : tp.obs().snapshot().per_type)
      if (!t.internal) wire += t.wire_bytes;
    return wire;
  };
  EXPECT_EQ(measure(tog::on, tog::on), 16u * (n - 1));   // fast relax record
  EXPECT_EQ(measure(tog::off, tog::on), 24u * (n - 1));  // compact eval payload
  EXPECT_EQ(measure(tog::off, tog::off), sizeof(gather_state) * (n - 1));
}

}  // namespace
}  // namespace dpg::pattern
