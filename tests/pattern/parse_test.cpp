// The textual pattern front-end: parsing, semantic checking, and — the key
// property — agreement between the parser's plan analysis and the EDSL
// instantiation's plan for the same pattern.
#include "pattern/parse.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "pattern/action.hpp"

namespace dpg::pattern::text {
namespace {

constexpr const char* kSsspSource = R"(
// The paper's Fig. 2 SSSP pattern.
pattern SSSP {
  vertex_property<double> dist;
  edge_property<double> weight;

  action relax(v) {
    generator e : out_edges;
    alias d = dist[v] + weight[e];
    when (dist[trg(e)] > d) {
      dist[trg(e)] = d;
    }
  }
}
)";

constexpr const char* kCcSource = R"(
pattern CC {
  vertex_property<vertex> pnt;
  vertex_property<vertex> chg;
  vertex_property<vertex_list> conf;

  action cc_search(v) {
    generator e : out_edges;
    when (pnt[trg(e)] == null_vertex) {
      pnt[trg(e)] = pnt[v];
    }
    when (pnt[trg(e)] != pnt[v]) {
      conf[trg(e)].insert(pnt[v]);
    }
  }

  action cc_jump(v) {
    when (chg[pnt[v]] < chg[v]) {
      chg[v] = chg[pnt[v]];
    }
  }
}
)";

TEST(Parse, SsspStructure) {
  const auto p = parse_pattern(kSsspSource);
  EXPECT_EQ(p.name, "SSSP");
  ASSERT_EQ(p.properties.size(), 2u);
  EXPECT_TRUE(p.properties[0].on_vertices);
  EXPECT_FALSE(p.properties[1].on_vertices);
  EXPECT_EQ(p.properties[0].type, value_kind::real);
  ASSERT_EQ(p.actions.size(), 1u);
  const auto& relax = p.actions[0];
  EXPECT_EQ(relax.name, "relax");
  EXPECT_EQ(relax.vertex_param, "v");
  EXPECT_EQ(relax.gen, generator_type::out_edges);
  EXPECT_EQ(relax.aliases.size(), 1u);
  ASSERT_EQ(relax.conditions.size(), 1u);
  EXPECT_EQ(relax.conditions[0].mods.size(), 1u);
}

TEST(Parse, SsspPlanMatchesFigureSix) {
  const auto analyzed = analyze(parse_pattern(kSsspSource));
  ASSERT_EQ(analyzed.actions.size(), 1u);
  const auto& a = analyzed.actions[0];
  EXPECT_EQ(a.gather_hops, 1);
  EXPECT_FALSE(a.final_merged);
  EXPECT_TRUE(a.atomic_path);
  EXPECT_EQ(a.final_reads, 1);
  EXPECT_EQ(a.arena_bytes, 24u);
  EXPECT_TRUE(a.has_dependencies);
  EXPECT_EQ(a.messages_per_application(), 1);
  EXPECT_EQ(a.final_locality, "trg(e)");
}

TEST(Parse, ParserPlanEqualsEdslPlan) {
  // Build the same SSSP pattern through the EDSL and compare every plan
  // field the two front-ends share.
  const auto analyzed = analyze(parse_pattern(kSsspSource)).actions[0];

  graph::distributed_graph g(8, graph::path_graph(8),
                             graph::distribution::cyclic(8, 2));
  pmap::vertex_property_map<double> dist_map(g, 1e100);
  pmap::edge_property_map<double> weight_map(g, 1.0);
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  property dist(dist_map);
  property weight(weight_map);
  auto relax = instantiate(tp, g, locks,
                           make_action("relax", out_edges_gen{},
                                       when(dist(trg(e_)) > dist(v_) + weight(e_),
                                            assign(dist(trg(e_)), dist(v_) + weight(e_)))));
  const plan_info& edsl = relax->plan();
  EXPECT_EQ(analyzed.gather_hops, edsl.gather_hops);
  EXPECT_EQ(analyzed.final_merged, edsl.final_merged);
  EXPECT_EQ(analyzed.atomic_path, edsl.atomic_path);
  EXPECT_EQ(analyzed.final_reads, edsl.final_reads);
  EXPECT_EQ(analyzed.arena_bytes, edsl.arena_bytes);
  EXPECT_EQ(analyzed.has_dependencies, edsl.has_dependencies);
  EXPECT_EQ(analyzed.hop_localities, edsl.hop_localities);
  EXPECT_EQ(analyzed.final_locality, edsl.final_locality);
  EXPECT_EQ(analyzed.fast_path, edsl.fast_path);
  EXPECT_EQ(analyzed.batch_kernel, edsl.batch_kernel);
  EXPECT_EQ(analyzed.fast_reduction, edsl.fast_reduction);
  EXPECT_EQ(explain(analyzed), pattern::explain("relax", edsl));
}

TEST(Parse, CcPatternAnalyzes) {
  const auto analyzed = analyze(parse_pattern(kCcSource));
  ASSERT_EQ(analyzed.actions.size(), 2u);
  const auto& search = analyzed.actions[0];
  EXPECT_EQ(search.conditions, 2);
  EXPECT_TRUE(search.has_dependencies);      // pnt read & written
  EXPECT_FALSE(search.atomic_path);          // two arms
  EXPECT_EQ(search.messages_per_application(), 1);
  const auto& jump = analyzed.actions[1];
  EXPECT_EQ(jump.gather_hops, 2);            // v -> chase
  EXPECT_EQ(jump.final_locality, "v");
  EXPECT_EQ(jump.messages_per_application(), 2);
  EXPECT_TRUE(jump.atomic_path);
}

TEST(Parse, ExplainSourceRendersEverything) {
  const std::string text = explain_source(kCcSource);
  EXPECT_NE(text.find("pattern CC"), std::string::npos);
  EXPECT_NE(text.find("action cc_search"), std::string::npos);
  EXPECT_NE(text.find("action cc_jump"), std::string::npos);
  EXPECT_NE(text.find("hop 1 at chase"), std::string::npos);
}

TEST(Parse, CommentsAndAliasSubstitution) {
  const auto p = parse_pattern(R"(
pattern P {
  vertex_property<double> x;
  action a(v) {
    alias two_x = x[v] + x[v];
    when (two_x > 1.0) { x[v] = two_x; }  // trailing comment? no: line comment
  }
}
)");
  const auto an = analyze(p);
  EXPECT_EQ(an.actions[0].gather_hops, 1);
  EXPECT_TRUE(an.actions[0].final_merged);  // everything at v
  EXPECT_EQ(an.actions[0].messages_per_application(), 0);
}


TEST(Parse, MinMaxIntrinsics) {
  // Widest path in the textual grammar: the min/max intrinsics.
  const auto analyzed = analyze(parse_pattern(R"(
pattern Widest {
  vertex_property<double> width;
  edge_property<double> cap;
  action relax(v) {
    generator e : out_edges;
    when (width[trg(e)] < min(width[v], cap[e])) {
      width[trg(e)] = min(width[v], cap[e]);
    }
  }
}
)"));
  const auto& a = analyzed.actions[0];
  EXPECT_EQ(a.gather_hops, 1);
  EXPECT_TRUE(a.atomic_path);  // max-update shape
  EXPECT_EQ(a.messages_per_application(), 1);
  EXPECT_TRUE(a.has_dependencies);
}

// ---------------------------------------------------------------------------
// error cases
// ---------------------------------------------------------------------------

void expect_error(const char* src, const char* needle) {
  try {
    analyze(parse_pattern(src));
    FAIL() << "expected parse_error containing '" << needle << "'";
  } catch (const parse_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual: " << e.what();
  }
}

TEST(ParseErrors, UnknownIdentifier) {
  expect_error(R"(pattern P { vertex_property<double> x;
    action a(v) { when (y[v] > 1.0) { x[v] = 1.0; } } })",
               "unknown identifier 'y'");
}

TEST(ParseErrors, TwoGenerators) {
  expect_error(R"(pattern P { vertex_property<double> x;
    action a(v) { generator e : out_edges; generator f : out_edges;
      when (x[v] > 1.0) { x[v] = 1.0; } } })",
               "only one generator");
}

TEST(ParseErrors, EdgeMapIndexedByVertex) {
  expect_error(R"(pattern P { edge_property<double> w; vertex_property<double> x;
    action a(v) { generator e : out_edges;
      when (w[v] > 1.0) { x[v] = 1.0; } } })",
               "indexed by non-edge");
}

TEST(ParseErrors, VertexMapIndexedByEdge) {
  expect_error(R"(pattern P { vertex_property<double> x;
    action a(v) { generator e : out_edges;
      when (x[e] > 1.0) { x[v] = 1.0; } } })",
               "indexed by non-vertex");
}

TEST(ParseErrors, ModificationsAtDifferentLocalities) {
  expect_error(R"(pattern P { vertex_property<double> x;
    action a(v) { generator e : out_edges;
      when (x[trg(e)] > 1.0) { x[trg(e)] = 1.0; x[v] = 2.0; } } })",
               "share one locality");
}

TEST(ParseErrors, NonBooleanGuard) {
  expect_error(R"(pattern P { vertex_property<double> x;
    action a(v) { when (x[v] + 1.0) { x[v] = 1.0; } } })",
               "guard must be boolean");
}

TEST(ParseErrors, ChaseOfChase) {
  expect_error(R"(pattern P { vertex_property<vertex> p; vertex_property<double> x;
    action a(v) { when (x[p[p[v]]] > 1.0) { x[v] = 1.0; } } })",
               "one level of chasing");
}

TEST(ParseErrors, OpaqueValuesCannotTravel) {
  expect_error(R"(pattern P { vertex_property<vertex_list> s; vertex_property<double> x;
    action a(v) { generator e : out_edges;
      when (s[v] == s[v]) { x[trg(e)] = 1.0; } } })",
               "cannot travel");
}

TEST(ParseErrors, ConditionWithoutModification) {
  expect_error(R"(pattern P { vertex_property<double> x;
    action a(v) { when (x[v] > 1.0) { } } })",
               "at least one modification");
}

TEST(ParseErrors, SrcWithoutEdgeGenerator) {
  expect_error(R"(pattern P { vertex_property<double> x;
    action a(v) { generator u : adj;
      when (x[src(u)] > 1.0) { x[v] = 1.0; } } })",
               "src/trg");
}

TEST(ParseErrors, ReportsLineNumbers) {
  try {
    parse_pattern("pattern P {\n  vertex_property<double> x;\n  nonsense\n}");
    FAIL();
  } catch (const parse_error& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

}  // namespace
}  // namespace dpg::pattern::text
