// Compile-and-smoke test of the umbrella header and version macros.
#include "dpg.hpp"

#include <gtest/gtest.h>

TEST(Umbrella, VersionMacros) {
  EXPECT_EQ(DPG_VERSION_MAJOR, 1);
  EXPECT_STREQ(DPG_VERSION_STRING, "1.0.0");
}

TEST(Umbrella, EndToEndThroughUmbrellaOnly) {
  using namespace dpg;
  const graph::vertex_id n = 16;
  graph::distributed_graph g(n, graph::path_graph(n), graph::distribution::cyclic(n, 2));
  pmap::edge_property_map<double> w(g, 1.0);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  algo::sssp_solver solver(tp, g, w);
  tp.run([&](ampp::transport_context& ctx) { solver.run_fixed_point(ctx, 0); });
  for (graph::vertex_id v = 0; v < n; ++v)
    EXPECT_DOUBLE_EQ(solver.dist()[v], static_cast<double>(v));
}
