// Full-stack integration: Graph500-class R-MAT inputs, every pattern-based
// solver, every schedule, oracles everywhere — and the whole matrix again
// under scrambled (adversarial-order) delivery and under the full chaos
// fault plan (reorder + duplicate + delay + drop-with-retry). This is the
// "does the system as a whole behave like the paper's" test.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <vector>

#include "algo/baselines.hpp"
#include "algo/bfs.hpp"
#include "algo/cc.hpp"
#include "algo/pagerank.hpp"
#include "algo/sssp.hpp"
#include "graph/generators.hpp"
#include "obs/obs.hpp"

namespace dpg {
namespace {

using algo::sssp_solver;
using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;
using graph::vertex_id;

struct rmat_world {
  vertex_id n;
  std::vector<graph::edge> edges;

  explicit rmat_world(unsigned scale, unsigned ef, std::uint64_t seed) {
    graph::rmat_params p;
    p.scale = scale;
    p.edge_factor = ef;
    n = vertex_id{1} << scale;
    edges = graph::rmat(p, seed);
  }
};

enum class delivery { fifo, scrambled, chaos };

/// The fault plan a parameterized test case runs under, seeded from the
/// transport seed so the whole case reproduces from one number.
ampp::fault_plan plan_for(delivery d, std::uint64_t seed) {
  switch (d) {
    case delivery::scrambled: return ampp::fault_plan::scramble(seed);
    case delivery::chaos: return ampp::fault_plan::chaos(seed);
    default: return ampp::fault_plan::none();
  }
}

class FullStack : public ::testing::TestWithParam<delivery> {};

TEST_P(FullStack, SsspAllSchedulesOnRmat) {
  rmat_world w(11, 8, 42);
  distributed_graph g(w.n, w.edges, distribution::cyclic(w.n, 4));
  pmap::edge_property_map<double> weight(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 11, 100.0);
  });
  const auto oracle = algo::dijkstra(g, weight, 0);

  ampp::transport tp(ampp::transport_config{.n_ranks = 4,
                                            .coalescing_size = 64,
                                            .seed = 5,
                                            .faults = plan_for(GetParam(), 5)});
  sssp_solver solver(tp, g, weight);
  for (int mode = 0; mode < 3; ++mode) {
    tp.run([&](ampp::transport_context& ctx) {
      if (mode == 0)
        solver.run_fixed_point(ctx, 0);
      else if (mode == 1)
        solver.run_delta(ctx, 0, 25.0);
      else
        solver.run_delta_uncoordinated(ctx, 0, 25.0);
    });
    for (vertex_id v = 0; v < w.n; ++v)
      ASSERT_DOUBLE_EQ(solver.dist()[v], oracle[v]) << "mode=" << mode << " v=" << v;
  }
}

TEST_P(FullStack, CcOnSymmetrizedRmat) {
  rmat_world w(11, 2, 7);
  const auto sym = graph::symmetrize(w.edges);
  distributed_graph g(w.n, sym, distribution::hashed(w.n, 4, 3));
  const auto oracle = algo::cc_union_find(g);
  algo::cc_solver cc(g, ampp::transport_config{
                            .n_ranks = 4, .seed = 9, .faults = plan_for(GetParam(), 9)});
  cc.solve();
  // Partition equality.
  std::map<vertex_id, vertex_id> fwd, bwd;
  for (vertex_id v = 0; v < w.n; ++v) {
    auto [fit, f] = fwd.emplace(oracle[v], cc.components()[v]);
    ASSERT_EQ(fit->second, cc.components()[v]) << "v=" << v;
    auto [bit, b] = bwd.emplace(cc.components()[v], oracle[v]);
    ASSERT_EQ(bit->second, oracle[v]) << "v=" << v;
  }
}

TEST_P(FullStack, BfsOnRmat) {
  rmat_world w(11, 16, 13);
  const auto sym = graph::symmetrize(w.edges);
  distributed_graph g(w.n, sym, distribution::block(w.n, 4));
  const auto oracle = algo::bfs_levels(g, 1);
  ampp::transport tp(ampp::transport_config{
      .n_ranks = 4, .seed = 1, .faults = plan_for(GetParam(), 1)});
  algo::bfs_solver bfs(tp, g);
  tp.run([&](ampp::transport_context& ctx) { bfs.run_fixed_point(ctx, 1); });
  for (vertex_id v = 0; v < w.n; ++v) {
    const auto want = oracle[v] < 0 ? bfs.unreachable_depth()
                                    : static_cast<std::uint64_t>(oracle[v]);
    ASSERT_EQ(bfs.depth()[v], want) << "v=" << v;
  }
}

TEST_P(FullStack, PageRankOnRmat) {
  rmat_world w(10, 8, 21);
  distributed_graph g(w.n, w.edges, distribution::cyclic(w.n, 3));
  const auto oracle = algo::pagerank(g, 0.85, 15);
  ampp::transport tp(ampp::transport_config{
      .n_ranks = 3, .seed = 2, .faults = plan_for(GetParam(), 2)});
  algo::pagerank_solver pr(tp, g);
  tp.run([&](ampp::transport_context& ctx) { pr.run(ctx, 0.85, 15); });
  for (vertex_id v = 0; v < w.n; ++v)
    ASSERT_NEAR(pr.ranks()[v], oracle[v], 1e-11) << "v=" << v;
}

INSTANTIATE_TEST_SUITE_P(
    Delivery, FullStack,
    ::testing::Values(delivery::fifo, delivery::scrambled, delivery::chaos),
    [](const ::testing::TestParamInfo<delivery>& info) {
      switch (info.param) {
        case delivery::scrambled: return std::string("scrambled");
        case delivery::chaos: return std::string("chaos");
        default: return std::string("fifo");
      }
    });

TEST(FullStack, MessageEconomyScalesWithEdges) {
  // Sanity bound from the Fig. 6 plan: one fixed-point SSSP run sends at
  // most (relaxations-triggered re-invocations + seed) * degree messages;
  // in particular the total message count is within a small factor of
  // |E| on a run where most vertices settle quickly.
  rmat_world w(10, 8, 3);
  distributed_graph g(w.n, w.edges, distribution::cyclic(w.n, 2));
  pmap::edge_property_map<double> weight(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 2, 4.0);
  });
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  sssp_solver solver(tp, g, weight);
  obs::stats_scope sc(tp.obs());
  tp.run([&](ampp::transport_context& ctx) { solver.run_delta(ctx, 0, 8.0); });
  const obs::stats_snapshot& delta = sc.finish();
  // Every message of the relax plan corresponds to one generated edge of
  // one application; applications = invocations.
  EXPECT_GT(delta.core.messages_sent, 0u);
  EXPECT_LT(delta.core.messages_sent, 6 * g.num_edges());
}

}  // namespace
}  // namespace dpg
