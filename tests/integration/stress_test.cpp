// Larger-scale stress (R-MAT scale 12: 4096 vertices, ~65k directed
// edges): the solvers at a size where coalescing, bucket structures, and
// termination detection all do real work. Oracles still adjudicate
// everything; these tests trade a little runtime for coverage of the
// regimes small unit tests never reach.
#include <gtest/gtest.h>

#include <vector>

#include "algo/baselines.hpp"
#include "algo/bfs_dir_opt.hpp"
#include "algo/cc.hpp"
#include "algo/kcore.hpp"
#include "algo/sssp.hpp"
#include "graph/generators.hpp"

namespace dpg {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;
using graph::vertex_id;

constexpr unsigned kScale = 12;

const std::vector<graph::edge>& raw_edges() {
  static const std::vector<graph::edge> edges = [] {
    graph::rmat_params p;
    p.scale = kScale;
    p.edge_factor = 16;
    return graph::rmat(p, 0xbead);
  }();
  return edges;
}

TEST(Stress, SsspAllModesAtScale12) {
  const vertex_id n = vertex_id{1} << kScale;
  distributed_graph g(n, raw_edges(), distribution::cyclic(n, 4));
  pmap::edge_property_map<double> w(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 6, 255.0);
  });
  const auto oracle = algo::dijkstra(g, w, 0);
  ampp::transport tp(ampp::transport_config{.n_ranks = 4, .coalescing_size = 512});
  algo::sssp_solver solver(tp, g, w);
  for (int mode = 0; mode < 3; ++mode) {
    tp.run([&](ampp::transport_context& ctx) {
      if (mode == 0)
        solver.run_fixed_point(ctx, 0);
      else if (mode == 1)
        solver.run_delta(ctx, 0, 128.0);
      else
        solver.run_delta_uncoordinated(ctx, 0, 128.0);
    });
    for (vertex_id v = 0; v < n; ++v)
      ASSERT_DOUBLE_EQ(solver.dist()[v], oracle[v]) << "mode=" << mode;
  }
}

TEST(Stress, CcAtScale12) {
  const vertex_id n = vertex_id{1} << kScale;
  graph::rmat_params p;
  p.scale = kScale;
  p.edge_factor = 1;  // sparse => hundreds of components
  const auto edges = graph::symmetrize(graph::rmat(p, 3));
  distributed_graph g(n, edges, distribution::cyclic(n, 4));
  const auto oracle = algo::cc_union_find(g);
  algo::cc_solver cc(g, ampp::transport_config{.n_ranks = 4});
  cc.solve();
  std::map<vertex_id, vertex_id> fwd, bwd;
  for (vertex_id v = 0; v < n; ++v) {
    auto [fit, f] = fwd.emplace(oracle[v], cc.components()[v]);
    ASSERT_EQ(fit->second, cc.components()[v]);
    auto [bit, b] = bwd.emplace(cc.components()[v], oracle[v]);
    ASSERT_EQ(bit->second, oracle[v]);
  }
}

TEST(Stress, DirOptBfsAtScale12) {
  const vertex_id n = vertex_id{1} << kScale;
  const auto edges = graph::symmetrize(raw_edges());
  distributed_graph g(n, edges, distribution::cyclic(n, 4), /*bidirectional=*/true);
  const auto oracle = algo::bfs_levels(g, 1);
  ampp::transport tp(ampp::transport_config{.n_ranks = 4});
  algo::bfs_dir_opt_solver bfs(tp, g);
  tp.run([&](ampp::transport_context& ctx) { bfs.run(ctx, 1); });
  for (vertex_id v = 0; v < n; ++v) {
    const auto want = oracle[v] < 0 ? bfs.unreachable_depth()
                                    : static_cast<std::uint64_t>(oracle[v]);
    ASSERT_EQ(bfs.depth()[v], want);
  }
  // On a scale-12 symmetric R-MAT the dense middle frontier must flip the
  // heuristic into pull mode at least once.
  bool pulled = false;
  for (const char m : bfs.modes()) pulled = pulled || m == 'P';
  EXPECT_TRUE(pulled);
}

TEST(Stress, KCoreAtScale11) {
  const vertex_id n = 1u << 11;
  graph::rmat_params p;
  p.scale = 11;
  p.edge_factor = 8;
  const auto edges = graph::symmetrize(graph::simplify(graph::rmat(p, 5)));
  distributed_graph g(n, edges, distribution::cyclic(n, 4));
  ampp::transport tp(ampp::transport_config{.n_ranks = 4});
  algo::kcore_solver solver(tp, g);
  tp.run([&](ampp::transport_context& ctx) { solver.run(ctx); });
  // Spot-check the k-core property itself: within the subgraph induced by
  // {v : coreness(v) >= k}, every vertex has degree >= k (for k = 3).
  constexpr std::uint64_t k = 3;
  for (vertex_id v = 0; v < n; ++v) {
    if (solver.coreness()[v] < k) continue;
    std::uint64_t deg_in_core = 0;
    for (const vertex_id u : g.adjacent(v))
      if (u != v && solver.coreness()[u] >= k) ++deg_in_core;
    ASSERT_GE(deg_in_core, k) << "v=" << v;
  }
}

}  // namespace
}  // namespace dpg
