// Generator sanity: determinism, size contracts, shape properties.
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace dpg::graph {
namespace {

TEST(ErdosRenyi, ProducesRequestedEdgeCount) {
  const auto edges = erdos_renyi(100, 1234, 1);
  EXPECT_EQ(edges.size(), 1234u);
  for (const edge& e : edges) {
    ASSERT_LT(e.src, 100u);
    ASSERT_LT(e.dst, 100u);
  }
}

TEST(ErdosRenyi, DeterministicInSeed) {
  EXPECT_EQ(erdos_renyi(50, 300, 9), erdos_renyi(50, 300, 9));
  EXPECT_NE(erdos_renyi(50, 300, 9), erdos_renyi(50, 300, 10));
}

TEST(Rmat, SizeContract) {
  rmat_params p;
  p.scale = 8;
  p.edge_factor = 8;
  const auto edges = rmat(p, 42);
  EXPECT_EQ(edges.size(), (1u << 8) * 8u);
  for (const edge& e : edges) {
    ASSERT_LT(e.src, 1u << 8);
    ASSERT_LT(e.dst, 1u << 8);
  }
}

TEST(Rmat, DeterministicInSeed) {
  rmat_params p;
  p.scale = 7;
  EXPECT_EQ(rmat(p, 1), rmat(p, 1));
  EXPECT_NE(rmat(p, 1), rmat(p, 2));
}

TEST(Rmat, IsSkewed) {
  // A power-law-ish generator must concentrate edges: the max out-degree
  // should far exceed the mean.
  rmat_params p;
  p.scale = 10;
  p.edge_factor = 16;
  const auto edges = rmat(p, 3);
  std::vector<std::uint64_t> deg(1u << p.scale, 0);
  for (const edge& e : edges) ++deg[e.src];
  const std::uint64_t maxd = *std::max_element(deg.begin(), deg.end());
  const double mean = static_cast<double>(edges.size()) / static_cast<double>(deg.size());
  EXPECT_GT(static_cast<double>(maxd), 8.0 * mean);
}

TEST(Rmat, ScrambleChangesLayoutNotSize) {
  rmat_params a, b;
  a.scale = b.scale = 7;
  a.scramble_ids = true;
  b.scramble_ids = false;
  EXPECT_EQ(rmat(a, 5).size(), rmat(b, 5).size());
  EXPECT_NE(rmat(a, 5), rmat(b, 5));
}

TEST(FixedTopologies, PathCycleStarCompleteGrid) {
  EXPECT_EQ(path_graph(5).size(), 4u);
  EXPECT_EQ(cycle_graph(5).size(), 5u);
  EXPECT_EQ(star_graph(5).size(), 4u);
  EXPECT_EQ(complete_graph(5).size(), 20u);
  EXPECT_EQ(grid_graph(3, 4).size(), 2u * (3 * 3 + 2 * 4));
  EXPECT_TRUE(path_graph(1).empty());
  EXPECT_TRUE(path_graph(0).empty());
  EXPECT_TRUE(cycle_graph(1).empty());
}

TEST(EdgeWeights, SymmetricInEndpoints) {
  for (vertex_id u = 0; u < 20; ++u)
    for (vertex_id v = 0; v < 20; ++v) {
      ASSERT_DOUBLE_EQ(edge_weight(u, v, 9, 100.0), edge_weight(v, u, 9, 100.0));
      ASSERT_EQ(edge_weight_int(u, v, 9, 255), edge_weight_int(v, u, 9, 255));
    }
}

TEST(EdgeWeights, InRange) {
  for (vertex_id u = 0; u < 50; ++u) {
    const double w = edge_weight(u, u + 1, 4, 10.0);
    ASSERT_GE(w, 1.0);
    ASSERT_LE(w, 10.0);
    const auto wi = edge_weight_int(u, u + 1, 4, 8);
    ASSERT_GE(wi, 1u);
    ASSERT_LE(wi, 8u);
  }
}

TEST(EdgeWeights, SeedSensitive) {
  EXPECT_NE(edge_weight(3, 4, 1, 100.0), edge_weight(3, 4, 2, 100.0));
}

}  // namespace
}  // namespace dpg::graph
