// Edge-list I/O round trips and error handling.
#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/generators.hpp"

namespace dpg::graph {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "dpg_io_test.txt";
  void TearDown() override { std::remove(path_.c_str()); }

  void write_raw(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }
};

TEST_F(IoTest, RoundTripUnweighted) {
  const auto edges = erdos_renyi(40, 200, 77);
  write_edge_list(path_, 40, edges);
  const auto back = read_edge_list(path_);
  EXPECT_EQ(back.num_vertices, 40u);
  EXPECT_EQ(back.edges, edges);
  EXPECT_TRUE(back.weights.empty());
}

TEST_F(IoTest, RoundTripWeighted) {
  const std::vector<edge> edges{{0, 1}, {1, 2}, {2, 0}};
  const std::vector<double> weights{1.5, 2.25, 0.125};
  write_edge_list(path_, 3, edges, weights);
  const auto back = read_edge_list(path_);
  EXPECT_EQ(back.edges, edges);
  EXPECT_EQ(back.weights, weights);
}

TEST_F(IoTest, HeaderPinsVertexCount) {
  write_raw("# vertices 10\n0 1\n");
  EXPECT_EQ(read_edge_list(path_).num_vertices, 10u);
}

TEST_F(IoTest, VertexCountInferredWithoutHeader) {
  write_raw("0 1\n5 2\n");
  EXPECT_EQ(read_edge_list(path_).num_vertices, 6u);
}

TEST_F(IoTest, CommentsAndBlankLinesIgnored) {
  write_raw("# a comment\n\n0 1\n# another\n1 2\n");
  EXPECT_EQ(read_edge_list(path_).edges.size(), 2u);
}

TEST_F(IoTest, MalformedLineThrows) {
  write_raw("0 1\nnonsense\n");
  EXPECT_THROW(read_edge_list(path_), std::runtime_error);
}

TEST_F(IoTest, MixedWeightednessThrows) {
  write_raw("0 1 2.0\n1 2\n");
  EXPECT_THROW(read_edge_list(path_), std::runtime_error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(read_edge_list(path_ + ".does_not_exist"), std::runtime_error);
}

}  // namespace
}  // namespace dpg::graph
