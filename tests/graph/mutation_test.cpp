// Versioned in-place topology mutation (delta-CSR overlay).
//
// The contract under test:
//   * apply_edges() appends at the non-morphing boundary — degrees,
//     adjacency, and edge enumeration immediately include the overlay,
//     overlay edges get stable delta-tagged ids, and version() ticks;
//   * compact() folds the overlay into the base CSR and is *structurally
//     identical* (degrees, adjacency, edge-id → endpoints mapping) to a
//     from-scratch rebuild over "original edges followed by extras", for
//     every distribution kind — the equivalence oracle;
//   * mutation inside transport::run and post-mutation access to a frozen
//     (from_edge_values) property map die with diagnostics naming the
//     graph version.
#include "graph/distributed_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "ampp/transport.hpp"
#include "graph/generators.hpp"
#include "pmap/edge_map.hpp"

namespace dpg::graph {
namespace {

distribution make_dist(int kind, vertex_id n, rank_t ranks) {
  switch (kind) {
    case 0: return distribution::block(n, ranks);
    case 1: return distribution::cyclic(n, ranks);
    default: return distribution::hashed(n, ranks, 7);
  }
}

std::vector<edge> random_extra(vertex_id n, int count, std::uint64_t seed) {
  std::vector<edge> extra;
  dpg::xoshiro256ss rng(seed);
  for (int i = 0; i < count; ++i) extra.push_back({rng.below(n), rng.below(n)});
  return extra;
}

using params = std::tuple<int, rank_t>;

class MutationEquivalence : public ::testing::TestWithParam<params> {};

TEST_P(MutationEquivalence, ApplyEdgesExtendsTheLiveView) {
  auto [kind, ranks] = GetParam();
  const vertex_id n = 120;
  const auto edges = erdos_renyi(n, 700, 13);
  distributed_graph g(n, edges, make_dist(kind, n, ranks), /*bidirectional=*/true);
  const auto extra = random_extra(n, 16, 99);

  std::vector<std::uint64_t> out_before(n), in_before(n);
  for (vertex_id v = 0; v < n; ++v) {
    out_before[v] = g.out_degree(v);
    in_before[v] = g.in_degree(v);
  }
  const std::uint64_t v0 = g.version();
  const std::uint64_t s0 = g.structure_version();
  g.apply_edges(extra);
  EXPECT_EQ(g.version(), v0 + 1);
  EXPECT_EQ(g.structure_version(), s0) << "apply_edges must not renumber edge ids";
  EXPECT_EQ(g.num_edges(), edges.size() + extra.size());
  EXPECT_EQ(g.total_delta_edges(), extra.size());

  std::map<vertex_id, std::uint64_t> extra_out, extra_in;
  for (const edge& e : extra) {
    extra_out[e.src]++;
    extra_in[e.dst]++;
  }
  std::set<std::uint64_t> delta_eids;
  for (vertex_id v = 0; v < n; ++v) {
    ASSERT_EQ(g.out_degree(v), out_before[v] + extra_out[v]) << "v=" << v;
    ASSERT_EQ(g.in_degree(v), in_before[v] + extra_in[v]) << "v=" << v;
    // Enumeration order: the base CSR segment first, then overlay edges in
    // append order; overlay handles carry delta-tagged ids.
    std::uint64_t pos = 0;
    const std::uint64_t base_n = out_before[v];
    for (const edge_handle e : g.out_edges(v)) {
      ASSERT_EQ(e.src, v);
      if (pos >= base_n) {
        ASSERT_TRUE(is_delta_edge(e.eid));
        ASSERT_TRUE(delta_eids.insert(e.eid).second) << "duplicate delta id";
        ASSERT_EQ(delta_edge_rank(e.eid), g.owner(v));
      } else {
        ASSERT_FALSE(is_delta_edge(e.eid));
      }
      ++pos;
    }
    // adjacent() sees the same targets as out_edges().
    std::vector<vertex_id> adj_targets, edge_targets;
    for (const vertex_id t : g.adjacent(v)) adj_targets.push_back(t);
    for (const edge_handle e : g.out_edges(v)) edge_targets.push_back(e.dst);
    ASSERT_EQ(adj_targets, edge_targets) << "v=" << v;
    // In-edges agree with the out view on endpoints and ids.
    for (const edge_handle e : g.in_edges(v)) ASSERT_EQ(e.dst, v);
  }
  EXPECT_EQ(delta_eids.size(), extra.size());
}

TEST_P(MutationEquivalence, CompactMatchesFromScratchRebuild) {
  auto [kind, ranks] = GetParam();
  const vertex_id n = 100;
  const auto edges = erdos_renyi(n, 600, 5);
  const auto extra = random_extra(n, 24, 7);

  // Mutated-then-compacted graph.
  distributed_graph g(n, edges, make_dist(kind, n, ranks), /*bidirectional=*/true);
  g.apply_edges(extra);
  const std::uint64_t v_before = g.version();
  g.compact();
  EXPECT_EQ(g.version(), v_before + 1);
  EXPECT_EQ(g.total_delta_edges(), 0u);

  // From-scratch oracle over "originals followed by extras".
  std::vector<edge> all(edges.begin(), edges.end());
  all.insert(all.end(), extra.begin(), extra.end());
  distributed_graph oracle(n, all, make_dist(kind, n, ranks), /*bidirectional=*/true);

  ASSERT_EQ(g.num_edges(), oracle.num_edges());
  // Structural identity: degrees, adjacency (with multiplicity and order),
  // and the edge-id → endpoints mapping must all coincide.
  std::map<std::uint64_t, std::pair<vertex_id, vertex_id>> ids_g, ids_o;
  for (vertex_id v = 0; v < n; ++v) {
    ASSERT_EQ(g.out_degree(v), oracle.out_degree(v)) << "v=" << v;
    ASSERT_EQ(g.in_degree(v), oracle.in_degree(v)) << "v=" << v;
    auto ga = g.adjacent(v);
    auto oa = oracle.adjacent(v);
    ASSERT_TRUE(std::equal(ga.begin(), ga.end(), oa.begin(), oa.end())) << "v=" << v;
    for (const edge_handle e : g.out_edges(v)) {
      ASSERT_FALSE(is_delta_edge(e.eid)) << "compact() left a delta id";
      ids_g[e.eid] = {e.src, e.dst};
    }
    for (const edge_handle e : oracle.out_edges(v)) ids_o[e.eid] = {e.src, e.dst};
  }
  EXPECT_EQ(ids_g, ids_o);
  // Mirrors reference ids the out view assigned, with matching endpoints.
  for (vertex_id v = 0; v < n; ++v)
    for (const edge_handle e : g.in_edges(v)) {
      auto it = ids_g.find(e.eid);
      ASSERT_NE(it, ids_g.end()) << "mirror id " << e.eid << " unknown to out view";
      ASSERT_EQ(it->second, std::make_pair(e.src, e.dst));
    }
}

TEST_P(MutationEquivalence, CompactIsIdempotentAndRepeatable) {
  auto [kind, ranks] = GetParam();
  const vertex_id n = 64;
  const auto edges = erdos_renyi(n, 300, 3);
  distributed_graph g(n, edges, make_dist(kind, n, ranks));
  // compact() with no overlay is a no-op (version unchanged).
  const std::uint64_t v0 = g.version();
  g.compact();
  EXPECT_EQ(g.version(), v0);

  // Two mutate/compact rounds accumulate correctly.
  std::vector<edge> all(edges.begin(), edges.end());
  for (std::uint64_t round = 0; round < 2; ++round) {
    const auto extra = random_extra(n, 8, 40 + round);
    g.apply_edges(extra);
    g.compact();
    all.insert(all.end(), extra.begin(), extra.end());
  }
  distributed_graph oracle(n, all, make_dist(kind, n, ranks));
  for (vertex_id v = 0; v < n; ++v) {
    ASSERT_EQ(g.out_degree(v), oracle.out_degree(v));
    auto ga = g.adjacent(v);
    auto oa = oracle.adjacent(v);
    ASSERT_TRUE(std::equal(ga.begin(), ga.end(), oa.begin(), oa.end())) << "v=" << v;
  }
}

/// Picks up to `count` victims from `from` whose (src,dst) pair occurs
/// exactly once in `all` — unambiguous instances, so a from-scratch oracle
/// can mirror resolve_edges() without knowing which duplicate it claimed.
std::vector<edge> unique_pairs(std::span<const edge> all, std::span<const edge> from,
                               std::size_t count) {
  std::map<std::pair<vertex_id, vertex_id>, int> mult;
  for (const edge& e : all) ++mult[{e.src, e.dst}];
  std::vector<edge> out;
  std::set<std::pair<vertex_id, vertex_id>> used;
  for (const edge& e : from) {
    if (out.size() == count) break;
    if (mult[{e.src, e.dst}] == 1 && used.insert({e.src, e.dst}).second)
      out.push_back(e);
  }
  return out;
}

TEST_P(MutationEquivalence, RemoveEdgesTombstonesTheLiveView) {
  auto [kind, ranks] = GetParam();
  const vertex_id n = 120;
  const auto edges = erdos_renyi(n, 700, 21);
  distributed_graph g(n, edges, make_dist(kind, n, ranks), /*bidirectional=*/true);
  const auto extra = random_extra(n, 20, 77);
  g.apply_edges(extra);

  // A fn-map taken before the removal: surviving handles must read the same
  // values afterwards (tombstoning never renumbers — index stability).
  pmap::edge_property_map<double> w(g, [](const edge_handle& e) {
    return static_cast<double>(e.src * 1000 + e.dst);
  });

  std::vector<edge> all(edges.begin(), edges.end());
  all.insert(all.end(), extra.begin(), extra.end());
  // Victims from both storage forms: base CSR rows and overlay slots.
  std::vector<edge> victims = unique_pairs(all, edges, 8);
  const std::vector<edge> delta_victims = unique_pairs(all, extra, 4);
  victims.insert(victims.end(), delta_victims.begin(), delta_victims.end());
  ASSERT_GE(victims.size(), 10u) << "generator produced too few unique pairs";

  const auto eids = g.resolve_edges(victims);
  std::size_t delta_removed = 0;
  for (const std::uint64_t eid : eids)
    if (is_delta_edge(eid)) ++delta_removed;
  ASSERT_GT(delta_removed, 0u) << "no overlay victim was exercised";
  ASSERT_GT(eids.size() - delta_removed, 0u) << "no base victim was exercised";

  std::map<vertex_id, std::vector<std::uint64_t>> out_before, in_before;
  std::map<std::uint64_t, double> w_before;
  for (vertex_id v = 0; v < n; ++v) {
    for (const edge_handle e : g.out_edges(v)) {
      out_before[v].push_back(e.eid);
      w_before[e.eid] = w.read(e);
    }
    for (const edge_handle e : g.in_edges(v)) in_before[v].push_back(e.eid);
  }

  const std::uint64_t v0 = g.version();
  const std::uint64_t s0 = g.structure_version();
  const std::uint64_t m0 = g.num_edges();
  const std::uint64_t d0 = g.total_delta_edges();
  g.remove_edges(eids);
  EXPECT_EQ(g.version(), v0 + 1);
  EXPECT_EQ(g.structure_version(), s0) << "remove_edges must not renumber edge ids";
  EXPECT_EQ(g.num_edges(), m0 - eids.size());
  EXPECT_EQ(g.total_tombstoned_edges(), eids.size());
  EXPECT_EQ(g.total_delta_edges(), d0 - delta_removed);
  EXPECT_GT(g.tombstone_bytes(), 0u);

  const std::set<std::uint64_t> dead(eids.begin(), eids.end());
  std::map<vertex_id, std::uint64_t> out_drop, in_drop;
  for (const edge& e : victims) {
    ++out_drop[e.src];
    ++in_drop[e.dst];
  }
  for (vertex_id v = 0; v < n; ++v) {
    ASSERT_EQ(g.out_degree(v), out_before[v].size() - out_drop[v]) << "v=" << v;
    ASSERT_EQ(g.in_degree(v), in_before[v].size() - in_drop[v]) << "v=" << v;
    // Survivors keep their ids, order, and property values; the dead are
    // never enumerated.
    std::vector<std::uint64_t> expect_out;
    for (const std::uint64_t eid : out_before[v])
      if (!dead.contains(eid)) expect_out.push_back(eid);
    std::vector<std::uint64_t> got_out;
    std::vector<vertex_id> edge_targets;
    for (const edge_handle e : g.out_edges(v)) {
      got_out.push_back(e.eid);
      edge_targets.push_back(e.dst);
      ASSERT_EQ(w.read(e), w_before[e.eid]) << "eid=" << e.eid;
    }
    ASSERT_EQ(got_out, expect_out) << "v=" << v;
    std::vector<vertex_id> adj_targets;
    for (const vertex_id t : g.adjacent(v)) adj_targets.push_back(t);
    ASSERT_EQ(adj_targets, edge_targets) << "v=" << v;
    std::vector<std::uint64_t> expect_in;
    for (const std::uint64_t eid : in_before[v])
      if (!dead.contains(eid)) expect_in.push_back(eid);
    std::vector<std::uint64_t> got_in;
    for (const edge_handle e : g.in_edges(v)) {
      got_in.push_back(e.eid);
      ASSERT_EQ(e.dst, v);
    }
    ASSERT_EQ(got_in, expect_in) << "v=" << v;
  }
}

TEST_P(MutationEquivalence, CompactAfterMixedMutationMatchesRebuild) {
  auto [kind, ranks] = GetParam();
  const vertex_id n = 100;
  const auto edges = erdos_renyi(n, 600, 11);
  const auto extra = random_extra(n, 24, 19);
  std::vector<edge> all(edges.begin(), edges.end());
  all.insert(all.end(), extra.begin(), extra.end());
  std::vector<edge> victims = unique_pairs(all, edges, 10);
  {
    const auto dv = unique_pairs(all, extra, 5);
    victims.insert(victims.end(), dv.begin(), dv.end());
  }
  ASSERT_GE(victims.size(), 12u);

  // Mutate (adds + deletes), then compact.
  distributed_graph g(n, edges, make_dist(kind, n, ranks), /*bidirectional=*/true);
  g.apply_edges(extra);
  g.remove_edges(g.resolve_edges(victims));
  const std::uint64_t v_before = g.version();
  const std::uint64_t s_before = g.structure_version();
  g.compact();
  EXPECT_EQ(g.version(), v_before + 1);
  EXPECT_EQ(g.structure_version(), s_before + 1);
  EXPECT_EQ(g.total_delta_edges(), 0u);
  EXPECT_EQ(g.total_tombstoned_edges(), 0u);

  // From-scratch oracle over the surviving edge list in input order (each
  // victim pair is unique, so "erase the first match" is the instance
  // resolve_edges claimed).
  std::vector<edge> survivors = all;
  for (const edge& vic : victims) {
    auto it = std::find_if(survivors.begin(), survivors.end(), [&](const edge& e) {
      return e.src == vic.src && e.dst == vic.dst;
    });
    ASSERT_NE(it, survivors.end());
    survivors.erase(it);
  }
  distributed_graph oracle(n, survivors, make_dist(kind, n, ranks),
                           /*bidirectional=*/true);

  ASSERT_EQ(g.num_edges(), oracle.num_edges());
  std::map<std::uint64_t, std::pair<vertex_id, vertex_id>> ids_g, ids_o;
  for (vertex_id v = 0; v < n; ++v) {
    ASSERT_EQ(g.out_degree(v), oracle.out_degree(v)) << "v=" << v;
    ASSERT_EQ(g.in_degree(v), oracle.in_degree(v)) << "v=" << v;
    auto ga = g.adjacent(v);
    auto oa = oracle.adjacent(v);
    ASSERT_TRUE(std::equal(ga.begin(), ga.end(), oa.begin(), oa.end())) << "v=" << v;
    for (const edge_handle e : g.out_edges(v)) {
      ASSERT_FALSE(is_delta_edge(e.eid)) << "compact() left a delta id";
      ids_g[e.eid] = {e.src, e.dst};
    }
    for (const edge_handle e : oracle.out_edges(v)) ids_o[e.eid] = {e.src, e.dst};
  }
  EXPECT_EQ(ids_g, ids_o);
  for (vertex_id v = 0; v < n; ++v)
    for (const edge_handle e : g.in_edges(v)) {
      auto it = ids_g.find(e.eid);
      ASSERT_NE(it, ids_g.end()) << "mirror id " << e.eid << " unknown to out view";
      ASSERT_EQ(it->second, std::make_pair(e.src, e.dst));
    }
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, MutationEquivalence,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(rank_t{1}, rank_t{2},
                                                              rank_t{4})));

// Regression: with_added_edges used to default `bidirectional` to false,
// silently dropping the in-edge storage of a bidirectional input graph.
TEST(GraphMutation, WithAddedEdgesPreservesBidirectionalStorage) {
  const vertex_id n = 20;
  distributed_graph g(n, path_graph(n), distribution::block(n, 2),
                      /*bidirectional=*/true);
  const std::vector<edge> extra{{0, 9}, {5, 2}};
  auto g2 = with_added_edges(g, extra);
  ASSERT_TRUE(g2.bidirectional()) << "in-edge storage was dropped by the rebuild";
  EXPECT_EQ(g2.num_edges(), g.num_edges() + 2);
  EXPECT_EQ(g2.in_degree(9), g.in_degree(9) + 1);
  EXPECT_EQ(g2.in_degree(2), g.in_degree(2) + 1);
  // An explicit override still wins in both directions.
  EXPECT_FALSE(with_added_edges(g, extra, false).bidirectional());
  distributed_graph d(n, path_graph(n), distribution::block(n, 2));
  EXPECT_FALSE(with_added_edges(d, extra).bidirectional());
  EXPECT_TRUE(with_added_edges(d, extra, true).bidirectional());
}

TEST(MutationDeathTest, ApplyEdgesInsideRunDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const vertex_id n = 8;
  distributed_graph g(n, path_graph(n), distribution::block(n, 2));
  auto mutate_inside = [&] {
    ampp::transport tp(ampp::transport_config{.n_ranks = 2});
    tp.run([&](ampp::transport_context& ctx) {
      if (ctx.rank() == 0) {
        const std::vector<edge> extra{{0, 7}};
        g.apply_edges(extra);
      }
      ctx.barrier();
    });
  };
  // The diagnostic names the non-morphing boundary and the graph version.
  EXPECT_DEATH(mutate_inside(), "non-morphing.*graph version 1");
}

TEST(MutationDeathTest, CompactInsideRunDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const vertex_id n = 8;
  distributed_graph g(n, path_graph(n), distribution::block(n, 2));
  const std::vector<edge> extra{{0, 7}};
  g.apply_edges(extra);
  auto compact_inside = [&] {
    ampp::transport tp(ampp::transport_config{.n_ranks = 2});
    tp.run([&](ampp::transport_context& ctx) {
      if (ctx.rank() == 0) g.compact();
      ctx.barrier();
    });
  };
  EXPECT_DEATH(compact_inside(), "outside a run");
}

TEST(MutationDeathTest, RemoveEdgesInsideRunDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const vertex_id n = 8;
  distributed_graph g(n, path_graph(n), distribution::block(n, 2));
  const auto eids = g.resolve_edges(std::vector<edge>{{0, 1}});
  auto remove_inside = [&] {
    ampp::transport tp(ampp::transport_config{.n_ranks = 2});
    tp.run([&](ampp::transport_context& ctx) {
      if (ctx.rank() == 0) g.remove_edges(eids);
      ctx.barrier();
    });
  };
  EXPECT_DEATH(remove_inside(), "non-morphing.*graph version 1");
}

TEST(MutationDeathTest, DoubleTombstoneDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const vertex_id n = 8;
  distributed_graph g(n, path_graph(n), distribution::block(n, 2));
  const auto eids = g.resolve_edges(std::vector<edge>{{2, 3}});
  g.remove_edges(eids);
  EXPECT_DEATH(g.remove_edges(eids), "tombstoned twice");
}

TEST(MutationDeathTest, ResolveMissingEdgeDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const vertex_id n = 8;
  distributed_graph g(n, path_graph(n), distribution::block(n, 2));
  // 0 -> 1 exists once; the second resolution of the same pair must die.
  const std::vector<edge> twice{{0, 1}, {0, 1}};
  EXPECT_DEATH((void)g.resolve_edges(twice), "no live edge 0 -> 1");
}

TEST(MutationDeathTest, StaleFrozenEdgeMapAccessDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const vertex_id n = 10;
  const auto edges = path_graph(n);
  distributed_graph g(n, edges, distribution::block(n, 2));
  std::vector<double> values(edges.size(), 1.5);
  auto w = pmap::edge_property_map<double>::from_edge_values(
      g, std::span<const edge>(edges), std::span<const double>(values));
  const edge_handle first = *g.out_edges(0).begin();
  EXPECT_EQ(w.read(first), 1.5);
  const std::vector<edge> extra{{0, 5}};
  g.apply_edges(extra);
  // A frozen map has no recipe for the overlay: the access must die with a
  // diagnostic naming both versions.
  EXPECT_DEATH((void)w.read(first),
               "stale edge property map.*version 1.*version 2");
}

}  // namespace
}  // namespace dpg::graph
