// Versioned in-place topology mutation (delta-CSR overlay).
//
// The contract under test:
//   * apply_edges() appends at the non-morphing boundary — degrees,
//     adjacency, and edge enumeration immediately include the overlay,
//     overlay edges get stable delta-tagged ids, and version() ticks;
//   * compact() folds the overlay into the base CSR and is *structurally
//     identical* (degrees, adjacency, edge-id → endpoints mapping) to a
//     from-scratch rebuild over "original edges followed by extras", for
//     every distribution kind — the equivalence oracle;
//   * mutation inside transport::run and post-mutation access to a frozen
//     (from_edge_values) property map die with diagnostics naming the
//     graph version.
#include "graph/distributed_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "ampp/transport.hpp"
#include "graph/generators.hpp"
#include "pmap/edge_map.hpp"

namespace dpg::graph {
namespace {

distribution make_dist(int kind, vertex_id n, rank_t ranks) {
  switch (kind) {
    case 0: return distribution::block(n, ranks);
    case 1: return distribution::cyclic(n, ranks);
    default: return distribution::hashed(n, ranks, 7);
  }
}

std::vector<edge> random_extra(vertex_id n, int count, std::uint64_t seed) {
  std::vector<edge> extra;
  dpg::xoshiro256ss rng(seed);
  for (int i = 0; i < count; ++i) extra.push_back({rng.below(n), rng.below(n)});
  return extra;
}

using params = std::tuple<int, rank_t>;

class MutationEquivalence : public ::testing::TestWithParam<params> {};

TEST_P(MutationEquivalence, ApplyEdgesExtendsTheLiveView) {
  auto [kind, ranks] = GetParam();
  const vertex_id n = 120;
  const auto edges = erdos_renyi(n, 700, 13);
  distributed_graph g(n, edges, make_dist(kind, n, ranks), /*bidirectional=*/true);
  const auto extra = random_extra(n, 16, 99);

  std::vector<std::uint64_t> out_before(n), in_before(n);
  for (vertex_id v = 0; v < n; ++v) {
    out_before[v] = g.out_degree(v);
    in_before[v] = g.in_degree(v);
  }
  const std::uint64_t v0 = g.version();
  const std::uint64_t s0 = g.structure_version();
  g.apply_edges(extra);
  EXPECT_EQ(g.version(), v0 + 1);
  EXPECT_EQ(g.structure_version(), s0) << "apply_edges must not renumber edge ids";
  EXPECT_EQ(g.num_edges(), edges.size() + extra.size());
  EXPECT_EQ(g.total_delta_edges(), extra.size());

  std::map<vertex_id, std::uint64_t> extra_out, extra_in;
  for (const edge& e : extra) {
    extra_out[e.src]++;
    extra_in[e.dst]++;
  }
  std::set<std::uint64_t> delta_eids;
  for (vertex_id v = 0; v < n; ++v) {
    ASSERT_EQ(g.out_degree(v), out_before[v] + extra_out[v]) << "v=" << v;
    ASSERT_EQ(g.in_degree(v), in_before[v] + extra_in[v]) << "v=" << v;
    // Enumeration order: the base CSR segment first, then overlay edges in
    // append order; overlay handles carry delta-tagged ids.
    std::uint64_t pos = 0;
    const std::uint64_t base_n = out_before[v];
    for (const edge_handle e : g.out_edges(v)) {
      ASSERT_EQ(e.src, v);
      if (pos >= base_n) {
        ASSERT_TRUE(is_delta_edge(e.eid));
        ASSERT_TRUE(delta_eids.insert(e.eid).second) << "duplicate delta id";
        ASSERT_EQ(delta_edge_rank(e.eid), g.owner(v));
      } else {
        ASSERT_FALSE(is_delta_edge(e.eid));
      }
      ++pos;
    }
    // adjacent() sees the same targets as out_edges().
    std::vector<vertex_id> adj_targets, edge_targets;
    for (const vertex_id t : g.adjacent(v)) adj_targets.push_back(t);
    for (const edge_handle e : g.out_edges(v)) edge_targets.push_back(e.dst);
    ASSERT_EQ(adj_targets, edge_targets) << "v=" << v;
    // In-edges agree with the out view on endpoints and ids.
    for (const edge_handle e : g.in_edges(v)) ASSERT_EQ(e.dst, v);
  }
  EXPECT_EQ(delta_eids.size(), extra.size());
}

TEST_P(MutationEquivalence, CompactMatchesFromScratchRebuild) {
  auto [kind, ranks] = GetParam();
  const vertex_id n = 100;
  const auto edges = erdos_renyi(n, 600, 5);
  const auto extra = random_extra(n, 24, 7);

  // Mutated-then-compacted graph.
  distributed_graph g(n, edges, make_dist(kind, n, ranks), /*bidirectional=*/true);
  g.apply_edges(extra);
  const std::uint64_t v_before = g.version();
  g.compact();
  EXPECT_EQ(g.version(), v_before + 1);
  EXPECT_EQ(g.total_delta_edges(), 0u);

  // From-scratch oracle over "originals followed by extras".
  std::vector<edge> all(edges.begin(), edges.end());
  all.insert(all.end(), extra.begin(), extra.end());
  distributed_graph oracle(n, all, make_dist(kind, n, ranks), /*bidirectional=*/true);

  ASSERT_EQ(g.num_edges(), oracle.num_edges());
  // Structural identity: degrees, adjacency (with multiplicity and order),
  // and the edge-id → endpoints mapping must all coincide.
  std::map<std::uint64_t, std::pair<vertex_id, vertex_id>> ids_g, ids_o;
  for (vertex_id v = 0; v < n; ++v) {
    ASSERT_EQ(g.out_degree(v), oracle.out_degree(v)) << "v=" << v;
    ASSERT_EQ(g.in_degree(v), oracle.in_degree(v)) << "v=" << v;
    auto ga = g.adjacent(v);
    auto oa = oracle.adjacent(v);
    ASSERT_TRUE(std::equal(ga.begin(), ga.end(), oa.begin(), oa.end())) << "v=" << v;
    for (const edge_handle e : g.out_edges(v)) {
      ASSERT_FALSE(is_delta_edge(e.eid)) << "compact() left a delta id";
      ids_g[e.eid] = {e.src, e.dst};
    }
    for (const edge_handle e : oracle.out_edges(v)) ids_o[e.eid] = {e.src, e.dst};
  }
  EXPECT_EQ(ids_g, ids_o);
  // Mirrors reference ids the out view assigned, with matching endpoints.
  for (vertex_id v = 0; v < n; ++v)
    for (const edge_handle e : g.in_edges(v)) {
      auto it = ids_g.find(e.eid);
      ASSERT_NE(it, ids_g.end()) << "mirror id " << e.eid << " unknown to out view";
      ASSERT_EQ(it->second, std::make_pair(e.src, e.dst));
    }
}

TEST_P(MutationEquivalence, CompactIsIdempotentAndRepeatable) {
  auto [kind, ranks] = GetParam();
  const vertex_id n = 64;
  const auto edges = erdos_renyi(n, 300, 3);
  distributed_graph g(n, edges, make_dist(kind, n, ranks));
  // compact() with no overlay is a no-op (version unchanged).
  const std::uint64_t v0 = g.version();
  g.compact();
  EXPECT_EQ(g.version(), v0);

  // Two mutate/compact rounds accumulate correctly.
  std::vector<edge> all(edges.begin(), edges.end());
  for (std::uint64_t round = 0; round < 2; ++round) {
    const auto extra = random_extra(n, 8, 40 + round);
    g.apply_edges(extra);
    g.compact();
    all.insert(all.end(), extra.begin(), extra.end());
  }
  distributed_graph oracle(n, all, make_dist(kind, n, ranks));
  for (vertex_id v = 0; v < n; ++v) {
    ASSERT_EQ(g.out_degree(v), oracle.out_degree(v));
    auto ga = g.adjacent(v);
    auto oa = oracle.adjacent(v);
    ASSERT_TRUE(std::equal(ga.begin(), ga.end(), oa.begin(), oa.end())) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, MutationEquivalence,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(rank_t{1}, rank_t{2},
                                                              rank_t{4})));

// Regression: with_added_edges used to default `bidirectional` to false,
// silently dropping the in-edge storage of a bidirectional input graph.
TEST(GraphMutation, WithAddedEdgesPreservesBidirectionalStorage) {
  const vertex_id n = 20;
  distributed_graph g(n, path_graph(n), distribution::block(n, 2),
                      /*bidirectional=*/true);
  const std::vector<edge> extra{{0, 9}, {5, 2}};
  auto g2 = with_added_edges(g, extra);
  ASSERT_TRUE(g2.bidirectional()) << "in-edge storage was dropped by the rebuild";
  EXPECT_EQ(g2.num_edges(), g.num_edges() + 2);
  EXPECT_EQ(g2.in_degree(9), g.in_degree(9) + 1);
  EXPECT_EQ(g2.in_degree(2), g.in_degree(2) + 1);
  // An explicit override still wins in both directions.
  EXPECT_FALSE(with_added_edges(g, extra, false).bidirectional());
  distributed_graph d(n, path_graph(n), distribution::block(n, 2));
  EXPECT_FALSE(with_added_edges(d, extra).bidirectional());
  EXPECT_TRUE(with_added_edges(d, extra, true).bidirectional());
}

TEST(MutationDeathTest, ApplyEdgesInsideRunDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const vertex_id n = 8;
  distributed_graph g(n, path_graph(n), distribution::block(n, 2));
  auto mutate_inside = [&] {
    ampp::transport tp(ampp::transport_config{.n_ranks = 2});
    tp.run([&](ampp::transport_context& ctx) {
      if (ctx.rank() == 0) {
        const std::vector<edge> extra{{0, 7}};
        g.apply_edges(extra);
      }
      ctx.barrier();
    });
  };
  // The diagnostic names the non-morphing boundary and the graph version.
  EXPECT_DEATH(mutate_inside(), "non-morphing.*graph version 1");
}

TEST(MutationDeathTest, CompactInsideRunDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const vertex_id n = 8;
  distributed_graph g(n, path_graph(n), distribution::block(n, 2));
  const std::vector<edge> extra{{0, 7}};
  g.apply_edges(extra);
  auto compact_inside = [&] {
    ampp::transport tp(ampp::transport_config{.n_ranks = 2});
    tp.run([&](ampp::transport_context& ctx) {
      if (ctx.rank() == 0) g.compact();
      ctx.barrier();
    });
  };
  EXPECT_DEATH(compact_inside(), "outside a run");
}

TEST(MutationDeathTest, StaleFrozenEdgeMapAccessDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const vertex_id n = 10;
  const auto edges = path_graph(n);
  distributed_graph g(n, edges, distribution::block(n, 2));
  std::vector<double> values(edges.size(), 1.5);
  auto w = pmap::edge_property_map<double>::from_edge_values(
      g, std::span<const edge>(edges), std::span<const double>(values));
  const edge_handle first = *g.out_edges(0).begin();
  EXPECT_EQ(w.read(first), 1.5);
  const std::vector<edge> extra{{0, 5}};
  g.apply_edges(extra);
  // A frozen map has no recipe for the overlay: the access must die with a
  // diagnostic naming both versions.
  EXPECT_DEATH((void)w.read(first),
               "stale edge property map.*version 1.*version 2");
}

}  // namespace
}  // namespace dpg::graph
