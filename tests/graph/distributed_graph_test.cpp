// Structural tests for the distributed CSR: the distributed view must be a
// faithful re-partitioning of the input edge list for every distribution,
// and in-edge mirrors must reference the same global edge ids as their
// out-edge originals.
#include "graph/distributed_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "graph/generators.hpp"

namespace dpg::graph {
namespace {

distribution make_dist(int kind, vertex_id n, rank_t ranks) {
  switch (kind) {
    case 0: return distribution::block(n, ranks);
    case 1: return distribution::cyclic(n, ranks);
    default: return distribution::hashed(n, ranks, 7);
  }
}

using params = std::tuple<int, rank_t>;

class GraphRoundTrip : public ::testing::TestWithParam<params> {};

TEST_P(GraphRoundTrip, OutEdgesReproduceInput) {
  auto [kind, ranks] = GetParam();
  const vertex_id n = 200;
  const auto edges = erdos_renyi(n, 1500, /*seed=*/11);
  distributed_graph g(n, edges, make_dist(kind, n, ranks));

  // Multiset equality between input edges and the union of all out_edges.
  std::multiset<std::pair<vertex_id, vertex_id>> want, got;
  for (const edge& e : edges) want.emplace(e.src, e.dst);
  std::set<std::uint64_t> eids;
  for (vertex_id v = 0; v < n; ++v) {
    for (const edge_handle e : g.out_edges(v)) {
      ASSERT_EQ(e.src, v);
      got.emplace(e.src, e.dst);
      ASSERT_TRUE(eids.insert(e.eid).second) << "duplicate edge id " << e.eid;
      ASSERT_LT(e.eid, g.num_edges());
    }
  }
  EXPECT_EQ(want, got);
  EXPECT_EQ(eids.size(), edges.size());
}

TEST_P(GraphRoundTrip, InEdgesMirrorOutEdges) {
  auto [kind, ranks] = GetParam();
  const vertex_id n = 150;
  const auto edges = erdos_renyi(n, 900, /*seed=*/23);
  distributed_graph g(n, edges, make_dist(kind, n, ranks), /*bidirectional=*/true);

  // Map global eid -> (src, dst) from the out view; every in-edge must
  // agree on endpoints and id.
  std::map<std::uint64_t, std::pair<vertex_id, vertex_id>> by_id;
  for (vertex_id v = 0; v < n; ++v)
    for (const edge_handle e : g.out_edges(v)) by_id[e.eid] = {e.src, e.dst};

  std::uint64_t in_total = 0;
  for (vertex_id v = 0; v < n; ++v) {
    for (const edge_handle e : g.in_edges(v)) {
      ASSERT_EQ(e.dst, v);
      auto it = by_id.find(e.eid);
      ASSERT_NE(it, by_id.end());
      EXPECT_EQ(it->second.first, e.src);
      EXPECT_EQ(it->second.second, e.dst);
      ASSERT_NE(e.mirror_slot, static_cast<std::uint64_t>(-1));
      ++in_total;
    }
  }
  EXPECT_EQ(in_total, edges.size());
}

TEST_P(GraphRoundTrip, DegreesAreConsistent) {
  auto [kind, ranks] = GetParam();
  const vertex_id n = 100;
  const auto edges = erdos_renyi(n, 700, /*seed=*/5);
  distributed_graph g(n, edges, make_dist(kind, n, ranks), true);

  std::vector<std::uint64_t> outdeg(n, 0), indeg(n, 0);
  for (const edge& e : edges) {
    ++outdeg[e.src];
    ++indeg[e.dst];
  }
  for (vertex_id v = 0; v < n; ++v) {
    ASSERT_EQ(g.out_degree(v), outdeg[v]) << "v=" << v;
    ASSERT_EQ(g.in_degree(v), indeg[v]) << "v=" << v;
    ASSERT_EQ(g.out_edges(v).size(), outdeg[v]);
    ASSERT_EQ(g.adjacent(v).size(), outdeg[v]);
  }
}

std::string param_name(const ::testing::TestParamInfo<params>& info) {
  std::string scheme = std::get<0>(info.param) == 0   ? "block"
                       : std::get<0>(info.param) == 1 ? "cyclic"
                                                      : "hashed";
  return scheme + "_r" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, GraphRoundTrip,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values<rank_t>(1, 2, 4, 7)),
                         param_name);

TEST(DistributedGraph, EdgeBasesPartitionIdSpace) {
  const vertex_id n = 64;
  const auto edges = erdos_renyi(n, 500, 3);
  distributed_graph g(n, edges, distribution::cyclic(n, 4));
  std::uint64_t expect_base = 0;
  for (rank_t r = 0; r < 4; ++r) {
    EXPECT_EQ(g.edge_base(r), expect_base);
    expect_base += g.edge_count(r);
  }
  EXPECT_EQ(expect_base, g.num_edges());
}

TEST(DistributedGraph, SymmetrizeDoublesNonLoops) {
  std::vector<edge> edges{{0, 1}, {1, 2}, {2, 2}};
  const auto sym = symmetrize(edges);
  EXPECT_EQ(sym.size(), 5u);  // 2*2 + 1 self-loop
  EXPECT_TRUE(std::count(sym.begin(), sym.end(), edge{1, 0}) == 1);
  EXPECT_TRUE(std::count(sym.begin(), sym.end(), edge{2, 1}) == 1);
}

TEST(DistributedGraph, SimplifyRemovesLoopsAndDuplicates) {
  std::vector<edge> edges{{0, 1}, {0, 1}, {1, 1}, {2, 0}, {0, 1}};
  const auto simple = simplify(edges);
  EXPECT_EQ(simple.size(), 2u);
  EXPECT_EQ(simple[0], (edge{0, 1}));
  EXPECT_EQ(simple[1], (edge{2, 0}));
}

TEST(DistributedGraph, ParallelEdgesKeepDistinctIds) {
  std::vector<edge> edges{{0, 1}, {0, 1}, {0, 1}};
  distributed_graph g(2, edges, distribution::block(2, 1));
  std::set<std::uint64_t> ids;
  for (const edge_handle e : g.out_edges(0)) ids.insert(e.eid);
  EXPECT_EQ(ids.size(), 3u);
}

TEST(DistributedGraph, EmptyVertexHasNoEdges) {
  std::vector<edge> edges{{0, 1}};
  distributed_graph g(3, edges, distribution::block(3, 2), true);
  EXPECT_TRUE(g.out_edges(2).empty());
  EXPECT_TRUE(g.in_edges(0).empty());
  EXPECT_EQ(g.out_degree(2), 0u);
}

}  // namespace
}  // namespace dpg::graph
