// Property tests for vertex distributions: owner/local_index/global must
// form a consistent bijection for every scheme, vertex count, and rank
// count.
#include "graph/distribution.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace dpg::graph {
namespace {

using params = std::tuple<int /*kind*/, vertex_id /*n*/, rank_t /*ranks*/>;

class DistributionProperty : public ::testing::TestWithParam<params> {
 protected:
  distribution make() const {
    auto [kind, n, ranks] = GetParam();
    switch (kind) {
      case 0: return distribution::block(n, ranks);
      case 1: return distribution::cyclic(n, ranks);
      default: return distribution::hashed(n, ranks, 0xfeed);
    }
  }
};

TEST_P(DistributionProperty, OwnerInRange) {
  const auto d = make();
  for (vertex_id v = 0; v < d.num_vertices(); ++v)
    ASSERT_LT(d.owner(v), d.num_ranks()) << "v=" << v;
}

TEST_P(DistributionProperty, CountsSumToN) {
  const auto d = make();
  std::uint64_t total = 0;
  for (rank_t r = 0; r < d.num_ranks(); ++r) total += d.count(r);
  EXPECT_EQ(total, d.num_vertices());
}

TEST_P(DistributionProperty, LocalIndexIsDenseAndInvertible) {
  const auto d = make();
  std::vector<std::vector<bool>> seen(d.num_ranks());
  for (rank_t r = 0; r < d.num_ranks(); ++r) seen[r].assign(d.count(r), false);
  for (vertex_id v = 0; v < d.num_vertices(); ++v) {
    const rank_t r = d.owner(v);
    const std::uint64_t li = d.local_index(v);
    ASSERT_LT(li, d.count(r)) << "v=" << v;
    ASSERT_FALSE(seen[r][li]) << "local index collision at v=" << v;
    seen[r][li] = true;
    ASSERT_EQ(d.global(r, li), v) << "global() must invert local_index()";
  }
}

std::string scheme_name(int kind) {
  switch (kind) {
    case 0: return "block";
    case 1: return "cyclic";
    default: return "hashed";
  }
}

std::string param_name(const ::testing::TestParamInfo<params>& info) {
  return scheme_name(std::get<0>(info.param)) + "_n" +
         std::to_string(std::get<1>(info.param)) + "_r" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, DistributionProperty,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values<vertex_id>(1, 2, 7, 64, 100, 1000),
                       ::testing::Values<rank_t>(1, 2, 3, 8, 16)),
    param_name);

TEST(Distribution, BlockIsContiguous) {
  const auto d = distribution::block(100, 4);
  // ceil(100/4) = 25 per rank.
  EXPECT_EQ(d.owner(0), 0u);
  EXPECT_EQ(d.owner(24), 0u);
  EXPECT_EQ(d.owner(25), 1u);
  EXPECT_EQ(d.owner(99), 3u);
  EXPECT_EQ(d.count(0), 25u);
}

TEST(Distribution, CyclicRoundRobins) {
  const auto d = distribution::cyclic(10, 3);
  EXPECT_EQ(d.owner(0), 0u);
  EXPECT_EQ(d.owner(1), 1u);
  EXPECT_EQ(d.owner(2), 2u);
  EXPECT_EQ(d.owner(3), 0u);
  EXPECT_EQ(d.count(0), 4u);  // 0,3,6,9
  EXPECT_EQ(d.count(1), 3u);
  EXPECT_EQ(d.count(2), 3u);
}

TEST(Distribution, HashedSpreadsLoad) {
  const auto d = distribution::hashed(10000, 8);
  for (rank_t r = 0; r < 8; ++r) {
    EXPECT_GT(d.count(r), 1000u);  // within ~±20% of 1250
    EXPECT_LT(d.count(r), 1500u);
  }
}

TEST(Distribution, HashedDependsOnSeed) {
  const auto a = distribution::hashed(1000, 4, 1);
  const auto b = distribution::hashed(1000, 4, 2);
  int differ = 0;
  for (vertex_id v = 0; v < 1000; ++v)
    if (a.owner(v) != b.owner(v)) ++differ;
  EXPECT_GT(differ, 500);
}

TEST(Distribution, MoreRanksThanVerticesLeavesEmptyRanks) {
  const auto d = distribution::block(3, 8);
  std::uint64_t total = 0;
  for (rank_t r = 0; r < 8; ++r) total += d.count(r);
  EXPECT_EQ(total, 3u);
}

}  // namespace
}  // namespace dpg::graph
