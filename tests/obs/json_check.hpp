// Strict, dependency-free JSON parser for test assertions about exported
// traces. Small DOM, recursive descent; rejects trailing garbage, bad
// escapes, unterminated strings and malformed numbers — exactly the bugs a
// hand-rolled exporter can produce.
#pragma once

#include <cctype>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dpg::testjson {

struct value {
  enum class kind { null_v, bool_v, number, string, array, object };
  kind k = kind::null_v;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<value> arr;
  std::vector<std::pair<std::string, value>> members;

  bool is_object() const { return k == kind::object; }
  bool is_array() const { return k == kind::array; }

  const value* find(std::string_view key) const {
    for (const auto& [name, v] : members)
      if (name == key) return &v;
    return nullptr;
  }
};

class parser {
 public:
  explicit parser(std::string_view text) : s_(text) {}

  bool parse(value& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(value& out, int depth) {
    if (depth > kMaxDepth || eof()) return false;
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': out.k = value::kind::string; return parse_string(out.str);
      case 't': out.k = value::kind::bool_v; out.b = true; return literal("true");
      case 'f': out.k = value::kind::bool_v; out.b = false; return literal("false");
      case 'n': out.k = value::kind::null_v; return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(value& out, int depth) {
    out.k = value::kind::object;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (eof() || peek() != '"' || !parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      value v;
      if (!parse_value(v, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_array(value& out, int depth) {
    out.k = value::kind::array;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      value v;
      if (!parse_value(v, depth + 1)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (!eof()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return false;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            if (!std::isxdigit(static_cast<unsigned char>(h))) return false;
            code = code * 16 + static_cast<unsigned>(
                                   h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          out += code < 0x80 ? static_cast<char>(code) : '?';  // ASCII is enough here
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(value& out) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '.' ||
                      peek() == 'e' || peek() == 'E' || peek() == '+' || peek() == '-'))
      ++pos_;
    const std::string text(s_.substr(start, pos_ - start));
    char* end = nullptr;
    out.num = std::strtod(text.c_str(), &end);
    out.k = value::kind::number;
    return end == text.c_str() + text.size();
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

inline bool parse(std::string_view text, value& out) { return parser(text).parse(out); }

}  // namespace dpg::testjson
