// The counter half of the observability layer: registry snapshots,
// per-message-type attribution, stats_scope deltas, and per-epoch records —
// including consistency under adversarial delivery order and with the
// optional handler-thread pool running.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "ampp/epoch.hpp"
#include "ampp/transport.hpp"
#include "obs/obs.hpp"

namespace dpg::obs {
namespace {

struct ping {
  std::uint64_t x;
};

/// Sends `per_rank` messages of two types from every rank.
void pump(ampp::transport& tp, ampp::message_type<ping>& a, ampp::message_type<ping>& b,
          int per_rank) {
  const ampp::rank_t ranks = tp.size();
  tp.run([&](ampp::transport_context& ctx) {
    ampp::epoch ep(ctx);
    for (int i = 0; i < per_rank; ++i) {
      a.send(ctx, static_cast<ampp::rank_t>((ctx.rank() + 1) % ranks), ping{1});
      if (i % 3 == 0)
        b.send(ctx, static_cast<ampp::rank_t>((ctx.rank() + 2) % ranks), ping{2});
    }
  });
}

/// Core invariant: everything sent was handled, and the non-internal
/// per-type rows sum exactly to the core totals.
void check_consistency(const stats_snapshot& s) {
  EXPECT_EQ(s.core.messages_sent, s.core.handler_invocations);
  std::uint64_t sent = 0, handled = 0;
  for (const type_counters& t : s.per_type) {
    if (t.internal) continue;
    sent += t.sent;
    handled += t.handled;
    EXPECT_EQ(t.sent, t.handled) << "type " << t.name;
  }
  EXPECT_EQ(sent, s.core.messages_sent);
  EXPECT_EQ(handled, s.core.handler_invocations);
}

TEST(Counters, ConsistentUnderScrambledDelivery) {
  ampp::transport tp(ampp::transport_config{.n_ranks = 4,
                                            .coalescing_size = 8,
                                            .seed = 11,
                                            .faults = ampp::fault_plan::scramble(11)});
  auto& a = tp.make_message_type<ping>("a", [](ampp::transport_context&, const ping&) {});
  auto& b = tp.make_message_type<ping>("b", [](ampp::transport_context&, const ping&) {});
  pump(tp, a, b, 300);
  const stats_snapshot s = tp.obs().snapshot();
  check_consistency(s);
  EXPECT_EQ(s.per_type[a.id()].sent, 300u * 4u);
  EXPECT_EQ(s.per_type[b.id()].sent, 100u * 4u);
  EXPECT_EQ(s.per_type[a.id()].bytes, 300u * 4u * sizeof(ping));
}

TEST(Counters, ConsistentUnderChaosFaultPlan) {
  // Drops, duplicates, delays, and reordering all at once: exactly-once
  // accounting must still hold, and the fault counters must obey the
  // reliability layer's conservation laws at quiescence.
  ampp::transport tp(ampp::transport_config{.n_ranks = 4,
                                            .coalescing_size = 8,
                                            .seed = 23,
                                            .faults = ampp::fault_plan::chaos(23)});
  auto& a = tp.make_message_type<ping>("a", [](ampp::transport_context&, const ping&) {});
  auto& b = tp.make_message_type<ping>("b", [](ampp::transport_context&, const ping&) {});
  pump(tp, a, b, 300);
  const stats_snapshot s = tp.obs().snapshot();
  check_consistency(s);
  EXPECT_EQ(s.per_type[a.id()].sent, 300u * 4u);
  EXPECT_GT(s.core.envelopes_dropped, 0u);
  EXPECT_EQ(s.core.envelopes_dropped, s.core.envelopes_retried);
  EXPECT_EQ(s.core.envelopes_duplicated, s.core.duplicates_suppressed);
}

TEST(Counters, WireByteConservationLaws) {
  // Compact wire layouts may shrink envelopes but never invent bytes. The
  // per-type envelope/wire accounting must tile the core totals exactly —
  // even under chaos faults, where retransmits reuse the packed envelope
  // and must not be double-counted — and each type's wire traffic is
  // bounded by its envelope count times its largest single envelope.
  ampp::transport tp(ampp::transport_config{.n_ranks = 4,
                                            .coalescing_size = 8,
                                            .seed = 7,
                                            .faults = ampp::fault_plan::chaos(7)});
  auto& a = tp.make_message_type<ping>("a", [](ampp::transport_context&, const ping& p) {
    EXPECT_EQ(p.x, 1u);  // survives wire truncation + receiver scatter
  });
  auto& b = tp.make_message_type<ping>("b", [](ampp::transport_context&, const ping&) {});
  a.set_wire_layout({{0, 4}});  // only the low half of x travels
  pump(tp, a, b, 300);
  const stats_snapshot s = tp.obs().snapshot();
  check_consistency(s);

  std::uint64_t envs = 0, wire = 0, bytes = 0;
  for (const type_counters& t : s.per_type) {
    envs += t.envelopes;
    wire += t.wire_bytes;
    bytes += t.bytes;
    EXPECT_LE(t.wire_bytes, t.envelopes * t.max_env_bytes) << "type " << t.name;
  }
  EXPECT_EQ(envs, s.core.envelopes_sent);
  EXPECT_EQ(wire, s.core.wire_bytes_sent);
  EXPECT_EQ(bytes, s.core.bytes_sent);
  EXPECT_LE(s.core.wire_bytes_sent, s.core.bytes_sent);
  // The layout actually bit: `a` moved exactly half its logical bytes.
  EXPECT_EQ(s.per_type[a.id()].wire_bytes, s.per_type[a.id()].bytes / 2);
  // `b` has no layout: its wire bytes equal its logical bytes.
  EXPECT_EQ(s.per_type[b.id()].wire_bytes, s.per_type[b.id()].bytes);
}

TEST(Counters, ConsistentWithHandlerThreads) {
  ampp::transport tp(ampp::transport_config{
      .n_ranks = 3, .coalescing_size = 16, .handler_threads = 2});
  auto& a = tp.make_message_type<ping>("a", [](ampp::transport_context&, const ping&) {});
  auto& b = tp.make_message_type<ping>("b", [](ampp::transport_context&, const ping&) {});
  pump(tp, a, b, 500);
  check_consistency(tp.obs().snapshot());
}

TEST(Counters, InternalTypesAreTaggedAndExcluded) {
  // The control plane (TD, collectives) is registered as internal message
  // types; its traffic must not leak into the user-facing totals.
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  auto& a = tp.make_message_type<ping>("a", [](ampp::transport_context&, const ping&) {});
  pump(tp, a, a, 10);
  const stats_snapshot s = tp.obs().snapshot();
  bool saw_internal = false;
  std::uint64_t internal_sent = 0;
  for (const type_counters& t : s.per_type) {
    saw_internal |= t.internal;
    if (t.internal) internal_sent += t.sent;
  }
  EXPECT_TRUE(saw_internal);       // TD lives on message types too
  EXPECT_GT(internal_sent, 0u);    // ... and actually ran
  EXPECT_EQ(s.core.control_messages, internal_sent);
  check_consistency(s);            // user totals unaffected
}

TEST(Counters, StatsScopeMeasuresOnlyItsRegion) {
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  auto& a = tp.make_message_type<ping>("a", [](ampp::transport_context&, const ping&) {});
  auto& b = tp.make_message_type<ping>("b", [](ampp::transport_context&, const ping&) {});
  pump(tp, a, b, 50);  // pre-scope traffic must not be counted

  stats_scope sc(tp.obs());
  pump(tp, a, b, 20);
  const stats_snapshot& d = sc.finish();
  EXPECT_EQ(d.per_type[a.id()].sent, 20u * 2u);
  EXPECT_EQ(d.per_type[b.id()].sent, 7u * 2u);  // i%3==0 for 20 iterations
  EXPECT_EQ(d.core.messages_sent, d.core.handler_invocations);

  // finish() is idempotent: later traffic doesn't change the captured delta.
  pump(tp, a, b, 30);
  EXPECT_EQ(sc.finish().per_type[a.id()].sent, 20u * 2u);
}

TEST(Counters, StatsScopeWritesOutParamOnDestruction) {
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  auto& a = tp.make_message_type<ping>("a", [](ampp::transport_context&, const ping&) {});
  auto& b = tp.make_message_type<ping>("b", [](ampp::transport_context&, const ping&) {});
  stats_snapshot out;
  {
    stats_scope sc(tp.obs(), &out);
    pump(tp, a, b, 5);
  }
  EXPECT_EQ(out.per_type[a.id()].sent, 5u * 2u);
}

TEST(Counters, EpochRecordsOnePerEpochWithDeltas) {
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  auto& a = tp.make_message_type<ping>("a", [](ampp::transport_context&, const ping&) {});
  constexpr int kEpochs = 4;
  tp.run([&](ampp::transport_context& ctx) {
    for (int e = 0; e < kEpochs; ++e) {
      ampp::epoch ep(ctx);
      for (int i = 0; i <= e; ++i) a.send(ctx, static_cast<ampp::rank_t>(1 - ctx.rank()), ping{0});
    }
  });
  const auto recs = tp.obs().epoch_records();
  ASSERT_EQ(recs.size(), static_cast<std::size_t>(kEpochs));
  for (int e = 0; e < kEpochs; ++e) {
    EXPECT_EQ(recs[e].index, static_cast<std::uint64_t>(e));
    // Both ranks send e+1 messages in epoch e.
    EXPECT_EQ(recs[e].delta.core.messages_sent, 2u * (static_cast<std::uint64_t>(e) + 1u));
  }
  // The records partition the run: their deltas sum to the totals.
  std::uint64_t sum = 0;
  for (const auto& r : recs) sum += r.delta.core.messages_sent;
  EXPECT_EQ(sum, tp.obs().snapshot().core.messages_sent);
  EXPECT_FALSE(tp.obs().epoch_summary().empty());
}

TEST(Counters, SnapshotSubtractHandlesLateRegisteredTypes) {
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  auto& a = tp.make_message_type<ping>("a", [](ampp::transport_context&, const ping&) {});
  const stats_snapshot before = tp.obs().snapshot();
  auto& b = tp.make_message_type<ping>("b", [](ampp::transport_context&, const ping&) {});
  pump(tp, a, b, 6);
  const stats_snapshot d = tp.obs().snapshot() - before;
  // `b` registered after `before`: it keeps its full counts in the delta.
  EXPECT_EQ(d.per_type[b.id()].sent, 2u * 2u);  // 6/3 per rank, 2 ranks
  EXPECT_EQ(d.per_type[a.id()].sent, 6u * 2u);
}

}  // namespace
}  // namespace dpg::obs
