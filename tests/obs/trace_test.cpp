// The timeline half of the observability layer: span recording, the
// runtime on/off switch, bounded buffering, and the Chrome trace-event
// exporter (validated with a strict JSON parser — the output must load in
// a real trace viewer).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "ampp/epoch.hpp"
#include "ampp/transport.hpp"
#include "json_check.hpp"
#include "obs/obs.hpp"

namespace dpg::obs {
namespace {

struct ping {
  std::uint64_t x;
};

void run_epochs(ampp::transport& tp, ampp::message_type<ping>& mt, int epochs) {
  tp.run([&](ampp::transport_context& ctx) {
    for (int e = 0; e < epochs; ++e) {
      ampp::epoch ep(ctx);
      mt.send(ctx, static_cast<ampp::rank_t>((ctx.rank() + 1) % tp.size()), ping{1});
    }
  });
}

std::string export_json(const registry& reg) {
  std::ostringstream os;
  reg.trace().write_chrome_trace(os, reg.type_counter_events());
  return os.str();
}

TEST(Trace, DisabledTracerRecordsNothing) {
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  auto& mt = tp.make_message_type<ping>("p", [](ampp::transport_context&, const ping&) {});
  ASSERT_FALSE(tp.obs().trace().enabled());  // off unless DPG_TRACE is set
  run_epochs(tp, mt, 8);
  EXPECT_EQ(tp.obs().trace().recorded(), 0u);
  EXPECT_TRUE(tp.obs().trace().events().empty());
}

TEST(Trace, ExportIsWellFormedJsonWithOneSpanPerEpoch) {
  constexpr int kEpochs = 5;
  ampp::transport tp(ampp::transport_config{.n_ranks = 3});
  auto& mt = tp.make_message_type<ping>("p", [](ampp::transport_context&, const ping&) {});
  tp.obs().trace().enable();
  run_epochs(tp, mt, kEpochs);
  tp.obs().trace().disable();

  testjson::value doc;
  ASSERT_TRUE(testjson::parse(export_json(tp.obs()), doc));
  ASSERT_TRUE(doc.is_object());
  const testjson::value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_FALSE(events->arr.empty());

  int rank0_epochs = 0;
  int counter_rows = 0;
  bool saw_handler = false, saw_flush = false;
  for (const testjson::value& ev : events->arr) {
    ASSERT_TRUE(ev.is_object());
    const testjson::value* name = ev.find("name");
    const testjson::value* cat = ev.find("cat");
    const testjson::value* ph = ev.find("ph");
    const testjson::value* tid = ev.find("tid");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(cat, nullptr);
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(tid, nullptr);
    EXPECT_EQ(ph->str, "X");
    if (cat->str == "epoch" && name->str == "epoch" && tid->num == 0) ++rank0_epochs;
    if (cat->str == "counter") {
      ++counter_rows;
      EXPECT_EQ(name->str.rfind("msg:", 0), 0u);  // "msg:<type>" rows
      const testjson::value* args = ev.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_NE(args->find("sent"), nullptr);
      EXPECT_NE(args->find("handled"), nullptr);
      EXPECT_NE(args->find("bytes"), nullptr);
    }
    saw_handler |= cat->str == "handler";
    saw_flush |= cat->str == "transport" && name->str == "flush";
  }
  EXPECT_EQ(rank0_epochs, kEpochs);  // one "epoch" span per epoch per rank
  EXPECT_GT(counter_rows, 0);        // per-message-type counters exported
  EXPECT_TRUE(saw_handler);
  EXPECT_TRUE(saw_flush);
}

TEST(Trace, SpansCoverAllRanks) {
  ampp::transport tp(ampp::transport_config{.n_ranks = 4});
  auto& mt = tp.make_message_type<ping>("p", [](ampp::transport_context&, const ping&) {});
  tp.obs().trace().enable();
  run_epochs(tp, mt, 2);
  bool rank_seen[4] = {};
  for (const trace_event& ev : tp.obs().trace().events())
    if (ev.tid < 4) rank_seen[ev.tid] = true;
  for (int r = 0; r < 4; ++r) EXPECT_TRUE(rank_seen[r]) << "rank " << r;
}

TEST(Trace, BufferIsBoundedAndCountsDrops) {
  tracer t;
  t.set_capacity(16);
  t.enable();
  for (int i = 0; i < 100; ++i) {
    trace_event ev;
    ev.set_name("e");
    ev.cat = "test";
    ev.tid = 0;  // one shard: capacity/kShards events fit
    t.record(ev);
  }
  EXPECT_LE(t.recorded(), 16u);
  EXPECT_GT(t.dropped(), 0u);
  // A truncated trace still exports valid JSON (with an otherData note).
  std::ostringstream os;
  t.write_chrome_trace(os);
  testjson::value doc;
  ASSERT_TRUE(testjson::parse(os.str(), doc));
  EXPECT_NE(doc.find("otherData"), nullptr);
}

TEST(Trace, NamesAreEscapedInExport) {
  tracer t;
  t.enable();
  trace_event ev;
  ev.set_name("we\"ird\\name\n");
  ev.cat = "test";
  t.record(ev);
  std::ostringstream os;
  t.write_chrome_trace(os);
  testjson::value doc;
  ASSERT_TRUE(testjson::parse(os.str(), doc));
  const testjson::value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->arr.size(), 1u);
  EXPECT_EQ(events->arr[0].find("name")->str, "we\"ird\\name\n");
}

TEST(Trace, SpanArgsSurviveRoundTrip) {
  tracer t;
  t.enable();
  {
    trace_span sp(&t, "test", "with_args", 3);
    sp.arg("alpha", 7);
    sp.arg("beta", 9);
  }
  std::ostringstream os;
  t.write_chrome_trace(os);
  testjson::value doc;
  ASSERT_TRUE(testjson::parse(os.str(), doc));
  const testjson::value& ev = doc.find("traceEvents")->arr.at(0);
  const testjson::value* args = ev.find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("alpha")->num, 7.0);
  EXPECT_EQ(args->find("beta")->num, 9.0);
  EXPECT_EQ(ev.find("tid")->num, 3.0);
}

TEST(Trace, DisabledSpanIsInactiveAndSafe) {
  tracer t;  // never enabled
  trace_span sp(&t, "test", "noop", 0);
  EXPECT_FALSE(sp.active());
  sp.arg("k", 1);  // must be a no-op, not a crash
  sp.finish();
  EXPECT_EQ(t.recorded(), 0u);
}

}  // namespace
}  // namespace dpg::obs
