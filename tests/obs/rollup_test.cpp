// Cross-registry aggregation for concurrent sessions (obs::rollup) and the
// overlap-safe epoch hooks. The registry keeps one writer per context; the
// rollup is the deliberately concurrent surface — these tests hammer it
// from many threads and assert nothing is lost or double-counted.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "ampp/transport.hpp"
#include "obs/registry.hpp"

namespace dpg::obs {
namespace {

stats_snapshot make_snap(std::uint64_t sent, const char* type_name,
                         std::uint64_t type_sent) {
  stats_snapshot s;
  s.core.messages_sent = sent;
  type_counters t;
  t.name = type_name;
  t.sent = type_sent;
  s.per_type.push_back(t);
  return s;
}

TEST(Merge, CoreAddsAndTypesMergeByName) {
  stats_snapshot a = make_snap(10, "x.relax", 4);
  const stats_snapshot b = make_snap(5, "x.relax", 3);
  const stats_snapshot c = make_snap(1, "y.explore", 2);
  merge(a, b);
  merge(a, c);
  EXPECT_EQ(a.core.messages_sent, 16u);
  ASSERT_EQ(a.per_type.size(), 2u);
  EXPECT_EQ(a.per_type[0].name, "x.relax");
  EXPECT_EQ(a.per_type[0].sent, 7u);
  EXPECT_EQ(a.per_type[1].name, "y.explore");
  EXPECT_EQ(a.per_type[1].sent, 2u);
}

TEST(Rollup, AbsorbAccumulatesPerLabel) {
  rollup r;
  r.absorb("sssp", make_snap(10, "sssp.relax", 10), /*epochs=*/2, /*wall_us=*/100);
  r.absorb("sssp", make_snap(7, "sssp.relax", 7), 1, 50);
  r.absorb("bfs", make_snap(3, "bfs.explore", 3), 1, 10);

  const auto rows = r.contexts();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].label, "sssp");
  EXPECT_EQ(rows[0].contexts, 2u);
  EXPECT_EQ(rows[0].epochs, 3u);
  EXPECT_EQ(rows[0].wall_us, 150u);
  EXPECT_EQ(rows[0].totals.core.messages_sent, 17u);
  EXPECT_EQ(rows[1].label, "bfs");
  EXPECT_EQ(r.total().core.messages_sent, 20u);
}

// Many threads absorbing and attributing concurrently: totals must add up
// exactly (this is the satellite bugfix — the old per-transport aggregation
// was only safe single-threaded).
TEST(Rollup, ConcurrentAbsorbAndAttributionLosesNothing) {
  rollup r;
  constexpr int kThreads = 8;
  constexpr int kIter = 200;
  {
    std::vector<std::jthread> ts;
    for (int t = 0; t < kThreads; ++t)
      ts.emplace_back([&r, t] {
        for (int i = 0; i < kIter; ++i) {
          r.absorb("ctx", make_snap(1, "m", 1), 1, 2);
          r.note_query(static_cast<std::uint64_t>(t % 2), i % 3 == 0,
                       i % 3 == 1, 5);
          r.note_solve(static_cast<std::uint64_t>(t % 2));
        }
      });
  }
  const auto rows = r.contexts();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].contexts, static_cast<std::uint64_t>(kThreads) * kIter);
  EXPECT_EQ(rows[0].totals.core.messages_sent,
            static_cast<std::uint64_t>(kThreads) * kIter);
  EXPECT_EQ(rows[0].epochs, static_cast<std::uint64_t>(kThreads) * kIter);
  EXPECT_EQ(r.tenants_seen(), 2u);
  std::uint64_t queries = 0, solves = 0, latency = 0;
  for (std::uint64_t t = 0; t < 2; ++t) {
    const auto row = r.tenant(t);
    queries += row.queries;
    solves += row.solves;
    latency += row.latency_us_sum;
    EXPECT_EQ(row.latency_us_max, 5u);
  }
  EXPECT_EQ(queries, static_cast<std::uint64_t>(kThreads) * kIter);
  EXPECT_EQ(solves, static_cast<std::uint64_t>(kThreads) * kIter);
  EXPECT_EQ(latency, static_cast<std::uint64_t>(kThreads) * kIter * 5);
}

TEST(Rollup, AbsorbLiveRegistryAndRenderSummary) {
  registry reg;
  reg.core().messages_sent.fetch_add(12, std::memory_order_relaxed);
  const std::size_t id = reg.add_type("demo.msg");
  reg.on_sent(id, 12, 96);
  rollup r;
  r.absorb("demo", reg);
  r.note_query(1, true, false, 42);
  const std::string s = r.summary();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("tenant"), std::string::npos);
  r.clear();
  EXPECT_TRUE(r.contexts().empty());
  EXPECT_EQ(r.tenants_seen(), 0u);
}

// Overlapping epoch windows (two drivers sharing one registry) must merge
// into one record instead of corrupting the open window.
TEST(Registry, OverlappingEpochWindowsMergeSafely) {
  registry reg;
  reg.epoch_begin();
  reg.epoch_begin();  // overlap: merged into the outer window
  reg.core().messages_sent.fetch_add(3, std::memory_order_relaxed);
  reg.epoch_end();
  EXPECT_EQ(reg.epochs_recorded(), 0u) << "outer window still open";
  reg.epoch_end();
  EXPECT_EQ(reg.epochs_recorded(), 1u);
  EXPECT_EQ(reg.epoch_overlaps(), 1u);
  EXPECT_EQ(reg.epoch_records()[0].delta.core.messages_sent, 3u);
}

}  // namespace
}  // namespace dpg::obs
