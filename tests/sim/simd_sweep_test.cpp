// Forced-ISA seed sweep: every algorithm in the repo, swept across fault
// plans x seeds with the batch-kernel tier forced to each level this host
// supports (the in-process equivalent of launching with DPG_SIMD_LEVEL).
// The vector tiers are pure dispatch optimizations, so every run must
// still reproduce the sequential oracle — and wherever the fixed point is
// unique, the forced-tier results must match the scalar baseline bit for
// bit under every fault plan. Tiers above the host's CPUID capability are
// reported and skipped (they cannot execute here by definition).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "algo/baselines.hpp"
#include "algo/bfs.hpp"
#include "algo/cc.hpp"
#include "algo/coloring.hpp"
#include "algo/kcore.hpp"
#include "algo/mis.hpp"
#include "algo/pagerank.hpp"
#include "algo/sssp.hpp"
#include "graph/generators.hpp"
#include "sim_harness.hpp"
#include "util/simd.hpp"

namespace dpg::sim {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;
using graph::vertex_id;

constexpr vertex_id kN = 96;
constexpr std::uint64_t kM = 480;
constexpr ampp::rank_t kRanks = 2;

std::vector<graph::edge> sim_edges(std::uint64_t seed, bool symmetric) {
  auto edges = graph::erdos_renyi(kN, kM, substream_seed(seed, 1));
  return symmetric ? graph::symmetrize(edges) : edges;
}

pmap::edge_property_map<double> sim_weights(const distributed_graph& g) {
  return pmap::edge_property_map<double>(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 17, 8.0);
  });
}

/// Restores the forced tier even when an assertion aborts the sweep body.
struct override_guard {
  ~override_guard() { simd::clear_override(); }
};

/// The tier axis of this sweep, with a once-per-binary note for every tier
/// the host CPU cannot execute (mirrors a ctest skip message — the grid
/// point exists but is not runnable here).
const std::vector<simd::level>& forced_tiers() {
  static const std::vector<simd::level> tiers = [] {
    const std::vector<simd::level> avail = simd::available_levels();
    for (int l = 0; l <= static_cast<int>(simd::level::avx512); ++l)
      if (l > static_cast<int>(simd::detect()))
        std::printf("[  SKIPPED ] simd tier %s: unsupported by this CPU "
                    "(detected %s)\n",
                    simd::name(static_cast<simd::level>(l)),
                    simd::name(simd::detect()));
    return avail;
  }();
  return tiers;
}

/// This sweep multiplies the grid by the tier axis, so it uses the first
/// two sweep seeds by default; DPG_SIM_SEEDS still overrides for repro.
std::vector<std::uint64_t> simd_seeds() {
  std::vector<std::uint64_t> seeds = sweep_seeds();
  if (seeds.size() > 2) seeds.resize(2);
  return seeds;
}

/// Runs `body(seed, plan, tier, is_baseline, events)` over the whole grid,
/// scalar first at every (seed, plan) point so the body can record the
/// baseline the vector tiers are compared against.
template <class Body>
void simd_sweep(const char* algo, Body&& body) {
  std::uint64_t events = 0;
  for (const std::uint64_t seed : simd_seeds())
    for (const plan_spec& ps : fault_plans())
      for (const simd::level l : forced_tiers()) {
        override_guard restore;
        simd::override_level(l);
        SCOPED_TRACE(repro(algo, ps.name, kRanks, seed) +
                     "  tier=" + simd::name(l));
        body(seed, ps, l, l == simd::level::scalar, events);
        if (::testing::Test::HasFatalFailure()) return;
      }
  EXPECT_GT(events, 0u) << algo << ": no fault plan ever fired";
}

TEST(SimdSweep, KnobSemantics) {
  // The DPG_SIMD_LEVEL value grammar, and the override/clamp behavior the
  // whole sweep relies on.
  simd::level out = simd::level::avx512;
  EXPECT_TRUE(simd::parse("scalar", out));
  EXPECT_EQ(out, simd::level::scalar);
  EXPECT_TRUE(simd::parse("sse4", out));
  EXPECT_EQ(out, simd::level::sse4);
  EXPECT_TRUE(simd::parse("avx2", out));
  EXPECT_EQ(out, simd::level::avx2);
  EXPECT_TRUE(simd::parse("avx512", out));
  EXPECT_EQ(out, simd::level::avx512);
  EXPECT_TRUE(simd::parse("2", out));
  EXPECT_EQ(out, simd::level::avx2);
  out = simd::level::sse4;
  EXPECT_FALSE(simd::parse("avx1024", out));
  EXPECT_EQ(out, simd::level::sse4);  // untouched on failure
  EXPECT_FALSE(simd::parse("", out));

  // available_levels() is exactly scalar..detect(), in order.
  const auto avail = simd::available_levels();
  ASSERT_EQ(avail.size(), static_cast<std::size_t>(simd::detect()) + 1);
  for (std::size_t i = 0; i < avail.size(); ++i)
    EXPECT_EQ(static_cast<std::size_t>(avail[i]), i);

  // override_level forces active() (clamped to the CPU); clear restores.
  {
    override_guard restore;
    simd::override_level(simd::level::scalar);
    EXPECT_EQ(simd::active(), simd::level::scalar);
    simd::override_level(simd::level::avx512);
    EXPECT_LE(simd::active(), simd::detect());
  }
}

TEST(SimdSweep, SsspFixedPoint) {
  // The heaviest batch-kernel user: distances are a unique fixed point, so
  // every tier must match the scalar baseline bit for bit.
  std::vector<std::uint64_t> baseline;
  simd_sweep("sssp_fp_simd", [&](std::uint64_t seed, const plan_spec& ps,
                                 simd::level, bool is_baseline,
                                 std::uint64_t& events) {
    distributed_graph g(kN, sim_edges(seed, false), distribution::cyclic(kN, kRanks));
    auto weight = sim_weights(g);
    const auto oracle = algo::dijkstra(g, weight, 0);
    ampp::transport tp(sim_config(kRanks, seed, ps));
    algo::sssp_solver solver(tp, g, weight);
    tp.run([&](ampp::transport_context& ctx) { solver.run_fixed_point(ctx, 0); });
    std::vector<std::uint64_t> bits(kN);
    for (vertex_id v = 0; v < kN; ++v) {
      ASSERT_DOUBLE_EQ(solver.dist()[v], oracle[v]) << "v=" << v;
      bits[v] = std::bit_cast<std::uint64_t>(solver.dist()[v]);
    }
    if (is_baseline)
      baseline = bits;
    else
      ASSERT_EQ(bits, baseline) << "tier diverged from scalar baseline";
    const auto s = tp.obs().snapshot();
    assert_fault_consistency(s);
    assert_occupancy_conserved(tp);
    events += fault_events(s);
  });
}

TEST(SimdSweep, SsspDeltaStepping) {
  std::vector<std::uint64_t> baseline;
  simd_sweep("sssp_delta_simd", [&](std::uint64_t seed, const plan_spec& ps,
                                    simd::level, bool is_baseline,
                                    std::uint64_t& events) {
    distributed_graph g(kN, sim_edges(seed, false), distribution::cyclic(kN, kRanks));
    auto weight = sim_weights(g);
    const auto oracle = algo::dijkstra(g, weight, 0);
    ampp::transport tp(sim_config(kRanks, seed, ps));
    algo::sssp_solver solver(tp, g, weight);
    tp.run([&](ampp::transport_context& ctx) { solver.run_delta(ctx, 0, 2.0); });
    std::vector<std::uint64_t> bits(kN);
    for (vertex_id v = 0; v < kN; ++v) {
      ASSERT_DOUBLE_EQ(solver.dist()[v], oracle[v]) << "v=" << v;
      bits[v] = std::bit_cast<std::uint64_t>(solver.dist()[v]);
    }
    if (is_baseline)
      baseline = bits;
    else
      ASSERT_EQ(bits, baseline) << "tier diverged from scalar baseline";
    const auto s = tp.obs().snapshot();
    assert_fault_consistency(s);
    assert_occupancy_conserved(tp);
    events += fault_events(s);
  });
}

TEST(SimdSweep, Bfs) {
  std::vector<std::uint64_t> baseline;
  simd_sweep("bfs_simd", [&](std::uint64_t seed, const plan_spec& ps, simd::level,
                             bool is_baseline, std::uint64_t& events) {
    distributed_graph g(kN, sim_edges(seed, false), distribution::cyclic(kN, kRanks));
    const auto oracle = algo::bfs_levels(g, 0);
    ampp::transport tp(sim_config(kRanks, seed, ps));
    algo::bfs_solver bfs(tp, g);
    tp.run([&](ampp::transport_context& ctx) { bfs.run_fixed_point(ctx, 0); });
    std::vector<std::uint64_t> depths(kN);
    for (vertex_id v = 0; v < kN; ++v) {
      if (oracle[v] < 0)
        ASSERT_EQ(bfs.depth()[v], bfs.unreachable_depth()) << "v=" << v;
      else
        ASSERT_EQ(bfs.depth()[v], static_cast<std::uint64_t>(oracle[v])) << "v=" << v;
      depths[v] = bfs.depth()[v];
    }
    if (is_baseline)
      baseline = depths;
    else
      ASSERT_EQ(depths, baseline) << "tier diverged from scalar baseline";
    const auto s = tp.obs().snapshot();
    assert_fault_consistency(s);
    assert_occupancy_conserved(tp);
    events += fault_events(s);
  });
}

TEST(SimdSweep, ConnectedComponents) {
  // CC labels are representative-dependent (seeding order varies with
  // delivery timing), so tiers are compared as partitions — the same
  // equivalence-class check the base sweep applies against the oracle.
  simd_sweep("cc_simd", [](std::uint64_t seed, const plan_spec& ps, simd::level,
                           bool, std::uint64_t& events) {
    distributed_graph g(kN, sim_edges(seed, true), distribution::cyclic(kN, kRanks));
    const auto oracle = algo::cc_union_find(g);
    algo::cc_solver cc(g, sim_config(kRanks, seed, ps));
    cc.solve();
    std::vector<vertex_id> fwd(kN, graph::invalid_vertex), bwd(kN, graph::invalid_vertex);
    for (vertex_id v = 0; v < kN; ++v) {
      const vertex_id a = oracle[v], b = cc.components()[v];
      if (fwd[a] == graph::invalid_vertex) fwd[a] = b;
      if (bwd[b] == graph::invalid_vertex) bwd[b] = a;
      ASSERT_EQ(fwd[a], b) << "v=" << v;
      ASSERT_EQ(bwd[b], a) << "v=" << v;
    }
    const auto s = cc.transport().obs().snapshot();
    assert_fault_consistency(s);
    assert_occupancy_conserved(cc.transport());
    events += fault_events(s);
  });
}

TEST(SimdSweep, PageRank) {
  // Contribution sums depend on arrival order (float associativity), so
  // cross-tier bit equality is not defined for PageRank; the oracle bound
  // is the invariant every tier must hold.
  simd_sweep("pagerank_simd", [](std::uint64_t seed, const plan_spec& ps,
                                 simd::level, bool, std::uint64_t& events) {
    distributed_graph g(kN, sim_edges(seed, false), distribution::cyclic(kN, kRanks));
    const auto oracle = algo::pagerank(g, 0.85, 12);
    ampp::transport tp(sim_config(kRanks, seed, ps));
    algo::pagerank_solver pr(tp, g);
    tp.run([&](ampp::transport_context& ctx) { pr.run(ctx, 0.85, 12); });
    for (vertex_id v = 0; v < kN; ++v)
      ASSERT_NEAR(pr.ranks()[v], oracle[v], 1e-9) << "v=" << v;
    const auto s = tp.obs().snapshot();
    assert_fault_consistency(s);
    assert_occupancy_conserved(tp);
    events += fault_events(s);
  });
}

TEST(SimdSweep, KCore) {
  std::vector<std::uint64_t> baseline;
  simd_sweep("kcore_simd", [&](std::uint64_t seed, const plan_spec& ps, simd::level,
                               bool is_baseline, std::uint64_t& events) {
    distributed_graph g(kN, sim_edges(seed, true), distribution::cyclic(kN, kRanks));
    const auto oracle = algo::kcore_peel(g);
    ampp::transport tp(sim_config(kRanks, seed, ps));
    algo::kcore_solver solver(tp, g);
    tp.run([&](ampp::transport_context& ctx) { solver.run(ctx); });
    std::vector<std::uint64_t> core(kN);
    for (vertex_id v = 0; v < kN; ++v) {
      ASSERT_EQ(solver.coreness()[v], oracle[v]) << "v=" << v;
      core[v] = solver.coreness()[v];
    }
    if (is_baseline)
      baseline = core;
    else
      ASSERT_EQ(core, baseline) << "tier diverged from scalar baseline";
    const auto s = tp.obs().snapshot();
    assert_fault_consistency(s);
    assert_occupancy_conserved(tp);
    events += fault_events(s);
  });
}

TEST(SimdSweep, Coloring) {
  // Luby coloring is a pure function of the priority seed, so the scalar
  // run of the same grid point is an exact oracle for every tier.
  std::vector<std::uint64_t> baseline;
  simd_sweep("coloring_simd", [&](std::uint64_t seed, const plan_spec& ps,
                                  simd::level, bool is_baseline,
                                  std::uint64_t& events) {
    distributed_graph g(kN, sim_edges(seed, true), distribution::cyclic(kN, kRanks));
    const std::uint64_t algo_seed = substream_seed(seed, 4);
    ampp::transport tp(sim_config(kRanks, seed, ps));
    algo::coloring_solver cs(tp, g);
    tp.run([&](ampp::transport_context& ctx) { cs.run(ctx, algo_seed); });
    std::vector<std::uint64_t> colors(kN);
    for (vertex_id v = 0; v < kN; ++v) {
      ASSERT_NE(cs.colors()[v], algo::coloring_solver::uncolored) << "v=" << v;
      colors[v] = cs.colors()[v];
    }
    for (vertex_id v = 0; v < kN; ++v)
      for (const vertex_id u : g.adjacent(v)) {
        if (u != v) {
          ASSERT_NE(cs.colors()[v], cs.colors()[u]) << v << "-" << u;
        }
      }
    if (is_baseline)
      baseline = colors;
    else
      ASSERT_EQ(colors, baseline) << "tier diverged from scalar baseline";
    const auto s = tp.obs().snapshot();
    assert_fault_consistency(s);
    assert_occupancy_conserved(tp);
    events += fault_events(s);
  });
}

TEST(SimdSweep, Mis) {
  std::vector<std::uint8_t> baseline;
  simd_sweep("mis_simd", [&](std::uint64_t seed, const plan_spec& ps, simd::level,
                             bool is_baseline, std::uint64_t& events) {
    distributed_graph g(kN, sim_edges(seed, true), distribution::cyclic(kN, kRanks));
    const std::uint64_t algo_seed = substream_seed(seed, 4);
    ampp::transport tp(sim_config(kRanks, seed, ps));
    algo::mis_solver mis(tp, g);
    tp.run([&](ampp::transport_context& ctx) { mis.run(ctx, algo_seed); });
    std::vector<std::uint8_t> in(kN);
    for (vertex_id v = 0; v < kN; ++v) {
      in[v] = mis.in_set(v) ? 1 : 0;
      if (mis.in_set(v))
        for (const vertex_id u : g.adjacent(v)) {
          if (u != v) {
            ASSERT_FALSE(mis.in_set(u)) << v << "-" << u;
          }
        }
    }
    if (is_baseline)
      baseline = in;
    else
      ASSERT_EQ(in, baseline) << "tier diverged from scalar baseline";
    const auto s = tp.obs().snapshot();
    assert_fault_consistency(s);
    assert_occupancy_conserved(tp);
    events += fault_events(s);
  });
}

}  // namespace
}  // namespace dpg::sim
