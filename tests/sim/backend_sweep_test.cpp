// Cross-backend equivalence sweep (ISSUE 8): the same algorithm on the
// same graph must reach the identical fixed point whether the machine is
//   * the classic in-process N-thread simulator (clean or under any of the
//     four fault plans), or
//   * N real processes over a shared-memory ring wire, or
//   * N real processes over a TCP-loopback wire.
//
// The oracle and every grid point run through one binary — tools/rankproc
// (path injected at configure time as DPG_RANKPROC_PATH) — so the hash
// comparison exercises a single canonicalization path end to end. Hashes
// are compared bit-for-bit: the backends must be invisible to results,
// exactly like the fault plans.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

namespace {

#ifndef DPG_RANKPROC_PATH
#error "DPG_RANKPROC_PATH must be defined by the build"
#endif

struct proc {
  FILE* pipe = nullptr;
  std::string out;
};

/// Launches `cmd` asynchronously with stdout captured; reap() waits and
/// returns the exit status.
proc launch(const std::string& cmd) {
  proc p;
  p.pipe = ::popen((cmd + " 2>&1").c_str(), "r");
  return p;
}

int reap(proc& p) {
  if (!p.pipe) return -1;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), p.pipe)) p.out += buf;
  const int status = ::pclose(p.pipe);
  p.pipe = nullptr;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -1;
}

/// Extracts the value of `hash=` from a RESULT line; empty if absent.
std::string hash_of(const std::string& out) {
  const auto pos = out.find("hash=");
  if (pos == std::string::npos) return {};
  return out.substr(pos + 5, 16);
}

/// Each multi-process launch gets its own shm session and a disjoint port
/// block (48 ports is more than the widest machine: cc opens two channels
/// of at most 4 ports each).
struct launch_ids {
  std::string session;
  std::uint16_t base_port;
};

launch_ids next_launch_ids() {
  static int counter = 0;
  const int c = counter++;
  launch_ids ids;
  ids.session = "bs" + std::to_string(::getpid()) + "c" + std::to_string(c);
  ids.base_port =
      static_cast<std::uint16_t>(26000 + (::getpid() % 512) * 64 + (c % 64) * 48);
  return ids;
}

std::string rankproc_cmd(const std::string& backend, unsigned ranks, unsigned rank,
                         const std::string& algo, std::uint64_t seed,
                         const launch_ids& ids, const std::string& plan = "none") {
  std::string cmd = std::string(DPG_RANKPROC_PATH) + " --backend " + backend +
                    " --ranks " + std::to_string(ranks) + " --rank " +
                    std::to_string(rank) + " --algo " + algo + " --seed " +
                    std::to_string(seed) + " --session " + ids.session +
                    " --base-port " + std::to_string(ids.base_port);
  if (plan != "none") cmd += " --plan " + plan;
  return cmd;
}

/// Runs the in-process machine (one subprocess hosting all ranks as
/// threads) and returns its result hash.
std::string run_inproc(unsigned ranks, const std::string& algo, std::uint64_t seed,
                       const std::string& plan) {
  proc p = launch(rankproc_cmd("inproc", ranks, 0, algo, seed, next_launch_ids(), plan));
  const int rc = reap(p);
  EXPECT_EQ(rc, 0) << "inproc rankproc failed (plan=" << plan << "):\n" << p.out;
  return hash_of(p.out);
}

/// Runs a full cross-process machine (one subprocess per rank) and returns
/// rank 0's result hash.
std::string run_cross(const std::string& backend, unsigned ranks,
                      const std::string& algo, std::uint64_t seed) {
  const launch_ids ids = next_launch_ids();
  std::vector<proc> procs(ranks);
  for (unsigned r = 0; r < ranks; ++r)
    procs[r] = launch(rankproc_cmd(backend, ranks, r, algo, seed, ids));
  bool ok = true;
  for (unsigned r = 0; r < ranks; ++r) {
    const int rc = reap(procs[r]);
    EXPECT_EQ(rc, 0) << backend << " rank " << r << " failed:\n" << procs[r].out;
    ok = ok && rc == 0;
  }
  return ok ? hash_of(procs[0].out) : std::string();
}

class BackendSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(BackendSweep, FixedPointsMatchAcrossWires) {
  const std::string algo = GetParam();
  const std::uint64_t seed = 1;
  for (const unsigned ranks : {2u, 4u}) {
    SCOPED_TRACE("algo=" + algo + " ranks=" + std::to_string(ranks));
    // The oracle: clean in-process run. The four fault plans must already
    // be invisible to it (that is the existing seed-sweep guarantee, but
    // asserting it here pins the whole equivalence class through the same
    // hashing path the wire backends are judged by).
    const std::string oracle = run_inproc(ranks, algo, seed, "none");
    ASSERT_EQ(oracle.size(), 16u) << "oracle produced no hash";
    for (const char* plan : {"scramble", "lossy", "chaos", "control_chaos"}) {
      SCOPED_TRACE(std::string("plan=") + plan);
      EXPECT_EQ(run_inproc(ranks, algo, seed, plan), oracle)
          << "fault plan perturbed the in-process fixed point";
    }
    for (const char* backend : {"shm", "tcp"}) {
      SCOPED_TRACE(std::string("backend=") + backend);
      EXPECT_EQ(run_cross(backend, ranks, algo, seed), oracle)
          << "cross-process fixed point diverged from the in-process oracle";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, BackendSweep,
                         ::testing::Values("sssp", "bfs", "cc"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
