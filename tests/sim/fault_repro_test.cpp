// Reproducibility of the fault simulator itself: the same sweep seed and
// the same fault plan must produce the same run, fault for fault. On a
// single rank the run is fully sequential, so two executions must agree on
// every obs counter, on the number of recorded trace spans, and on the
// algorithm output — this is what makes "reproduce with DPG_SIM_SEEDS=n"
// an exact replay rather than a statistical one.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algo/sssp.hpp"
#include "graph/generators.hpp"
#include "sim_harness.hpp"

namespace dpg::sim {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;
using graph::vertex_id;

struct run_record {
  obs::stats_snapshot snap;
  std::size_t spans = 0;
  std::vector<double> dist;
};

run_record run_once(std::uint64_t seed) {
  const vertex_id n = 80;
  const auto edges = graph::erdos_renyi(n, 400, substream_seed(seed, 1));
  distributed_graph g(n, edges, distribution::cyclic(n, 1));
  pmap::edge_property_map<double> weight(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 17, 8.0);
  });
  ampp::transport tp(ampp::transport_config{.n_ranks = 1,
                                            .coalescing_size = 4,
                                            .seed = substream_seed(seed, 3),
                                            .faults = ampp::fault_plan::chaos(
                                                substream_seed(seed, 2))});
  tp.obs().trace().enable();
  algo::sssp_solver solver(tp, g, weight);
  tp.run([&](ampp::transport_context& ctx) { solver.run_delta(ctx, 0, 2.0); });
  run_record r;
  r.snap = tp.obs().snapshot();
  r.spans = tp.obs().trace().recorded();
  for (vertex_id v = 0; v < n; ++v) r.dist.push_back(solver.dist()[v]);
  return r;
}

void expect_identical(const run_record& a, const run_record& b) {
  const obs::counters &x = a.snap.core, &y = b.snap.core;
  EXPECT_EQ(x.messages_sent, y.messages_sent);
  EXPECT_EQ(x.envelopes_sent, y.envelopes_sent);
  EXPECT_EQ(x.bytes_sent, y.bytes_sent);
  EXPECT_EQ(x.handler_invocations, y.handler_invocations);
  EXPECT_EQ(x.self_deliveries, y.self_deliveries);
  EXPECT_EQ(x.cache_hits, y.cache_hits);
  EXPECT_EQ(x.cache_evictions, y.cache_evictions);
  EXPECT_EQ(x.td_rounds, y.td_rounds);
  EXPECT_EQ(x.barriers, y.barriers);
  EXPECT_EQ(x.epochs, y.epochs);
  EXPECT_EQ(x.control_messages, y.control_messages);
  EXPECT_EQ(x.envelopes_dropped, y.envelopes_dropped);
  EXPECT_EQ(x.envelopes_retried, y.envelopes_retried);
  EXPECT_EQ(x.envelopes_duplicated, y.envelopes_duplicated);
  EXPECT_EQ(x.envelopes_delayed, y.envelopes_delayed);
  EXPECT_EQ(x.duplicates_suppressed, y.duplicates_suppressed);
  ASSERT_EQ(a.snap.per_type.size(), b.snap.per_type.size());
  for (std::size_t i = 0; i < a.snap.per_type.size(); ++i) {
    const obs::type_counters &s = a.snap.per_type[i], &t = b.snap.per_type[i];
    EXPECT_EQ(s.name, t.name);
    EXPECT_EQ(s.sent, t.sent) << "type " << s.name;
    EXPECT_EQ(s.handled, t.handled) << "type " << s.name;
    EXPECT_EQ(s.bytes, t.bytes) << "type " << s.name;
  }
  EXPECT_EQ(a.spans, b.spans);
  EXPECT_EQ(a.dist, b.dist);
}

TEST(FaultRepro, SameSeedSamePlanReplaysExactly) {
  for (const std::uint64_t seed : {11ULL, 29ULL}) {
    SCOPED_TRACE(repro("sssp_delta", "chaos", 1, seed));
    const run_record a = run_once(seed);
    const run_record b = run_once(seed);
    // The plan must actually be injecting faults for the replay to mean
    // anything.
    EXPECT_GT(fault_events(a.snap), 0u);
    EXPECT_GT(a.spans, 0u);
    expect_identical(a, b);
  }
}

TEST(FaultRepro, DifferentSeedsDiverge) {
  const run_record a = run_once(11);
  const run_record c = run_once(12);
  // Different sweep seeds give different graphs and different fault
  // patterns; the runs must not coincide.
  EXPECT_TRUE(a.dist != c.dist ||
              a.snap.core.envelopes_sent != c.snap.core.envelopes_sent);
}

}  // namespace
}  // namespace dpg::sim
