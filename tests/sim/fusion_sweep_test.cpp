// Multi-pattern fusion under deterministic chaos: the fused
// sssp+widest+bfs-tree triple, swept across fault plans x rank counts x
// seeds, must land every member's result map bit-identical to running
// the three solvers separately — and to the sequential oracles — with
// the per-type conservation laws extended to the fused message family
// (the fused lane's bytes are exactly records x fused-record size, solo
// lanes exactly records x member fast-record size). Sources are
// distinct per member: this grid is the serving layer's merged
// distinct-source story under fault injection.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <queue>
#include <vector>

#include "algo/baselines.hpp"
#include "algo/bfs.hpp"
#include "algo/fused.hpp"
#include "algo/sssp.hpp"
#include "algo/widest_path.hpp"
#include "graph/generators.hpp"
#include "sim_harness.hpp"

namespace dpg::sim {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;
using graph::vertex_id;

constexpr vertex_id kN = 96;
constexpr std::uint64_t kM = 480;
constexpr vertex_id kSsspSrc = 0, kWidestSrc = 1, kBfsSrc = 2;

std::vector<graph::edge> fusion_edges(std::uint64_t seed) {
  return graph::erdos_renyi(kN, kM, substream_seed(seed, 1));
}

pmap::edge_property_map<double> fusion_weights(const distributed_graph& g) {
  return pmap::edge_property_map<double>(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 17, 8.0);
  });
}

pmap::edge_property_map<double> fusion_caps(const distributed_graph& g) {
  return pmap::edge_property_map<double>(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 23, 50.0);
  });
}

/// Sequential widest-path oracle (Dijkstra with (max, min) in place of
/// (min, +)), mirroring the bottleneck recurrence the relax action solves.
std::vector<double> widest_oracle(const distributed_graph& g,
                                  const pmap::edge_property_map<double>& cap,
                                  vertex_id s) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> width(g.num_vertices(), 0.0);
  width[s] = kInf;
  std::priority_queue<std::pair<double, vertex_id>> pq;
  pq.emplace(kInf, s);
  while (!pq.empty()) {
    const auto [wd, v] = pq.top();
    pq.pop();
    if (wd < width[v]) continue;
    for (const edge_handle e : g.out_edges(v)) {
      const double nw = std::min(wd, cap[e]);
      if (nw > width[e.dst]) {
        width[e.dst] = nw;
        pq.emplace(nw, e.dst);
      }
    }
  }
  return width;
}

/// One member's triple of result maps as exact bit patterns (float
/// equality would hide sign/NaN differences; fusion promises bit
/// identity, so compare bits).
struct triple_bits {
  std::vector<std::uint64_t> dist, width, depth;
  bool operator==(const triple_bits&) const = default;
};

triple_bits bits_of(pmap::vertex_property_map<double>& dist,
                    pmap::vertex_property_map<double>& width,
                    pmap::vertex_property_map<std::uint64_t>& depth) {
  triple_bits t;
  for (vertex_id v = 0; v < kN; ++v) {
    t.dist.push_back(std::bit_cast<std::uint64_t>(dist[v]));
    t.width.push_back(std::bit_cast<std::uint64_t>(width[v]));
    t.depth.push_back(depth[v]);
  }
  return t;
}

/// Same grid driver as the main seed sweep (fault plans x {2,4} ranks x
/// seeds, reproducing-seed traces, at-least-one-fault assertion).
template <class Body>
void sweep(const char* algo, Body&& body) {
  std::uint64_t events = 0;
  for (const std::uint64_t seed : sweep_seeds())
    for (const ampp::rank_t ranks : {ampp::rank_t{2}, ampp::rank_t{4}})
      for (const plan_spec& ps : fault_plans()) {
        SCOPED_TRACE(repro(algo, ps.name, ranks, seed));
        body(seed, ranks, ps, events);
        if (::testing::Test::HasFatalFailure()) return;
      }
  EXPECT_GT(events, 0u) << algo << ": no fault plan ever fired";
}

/// The conservation laws extended to fused families: every fused-lane
/// payload is exactly one fused record wide, every solo-lane payload one
/// member fast record, and the family moved at least one payload (the
/// fused plan really carried the traffic). Returns the per-lane payload
/// counts so sweeps can assert both dispatch shapes actually ran.
struct family_traffic {
  std::uint64_t fused = 0;
  std::uint64_t solo = 0;
};

family_traffic assert_fused_family_conserved(const obs::stats_snapshot& s,
                                             std::size_t fused_bytes) {
  family_traffic ft;
  for (const obs::type_counters& t : s.per_type) {
    const std::string name = t.name;
    if (name.ends_with(".fused")) {
      EXPECT_EQ(t.bytes, t.sent * fused_bytes) << "type " << name;
      ft.fused += t.sent;
    } else if (name.ends_with(".solo")) {
      EXPECT_EQ(t.bytes, t.sent * 16u) << "type " << name;
      ft.solo += t.sent;
    }
  }
  EXPECT_GT(ft.fused + ft.solo, 0u) << "fused family carried no traffic";
  return ft;
}

TEST(FusionSweep, TripleBitIdenticalToSeparateSolves) {
  family_traffic total;
  sweep("fused_triple", [&total](std::uint64_t seed, ampp::rank_t ranks,
                                 const plan_spec& ps, std::uint64_t& events) {
    distributed_graph g(kN, fusion_edges(seed), distribution::cyclic(kN, ranks));
    auto weight = fusion_weights(g);
    auto cap = fusion_caps(g);
    const auto dist_oracle = algo::dijkstra(g, weight, kSsspSrc);
    const auto width_oracle = widest_oracle(g, cap, kWidestSrc);
    const auto depth_oracle = algo::bfs_levels(g, kBfsSrc);

    // Three separate solves, each on its own faulty transport.
    ampp::transport stp(sim_config(ranks, seed, ps));
    algo::sssp_solver sssp(stp, g, weight);
    stp.run([&](ampp::transport_context& ctx) { sssp.run_fixed_point(ctx, kSsspSrc); });
    ampp::transport wtp(sim_config(ranks, seed, ps));
    algo::widest_path_solver widest(wtp, g, cap);
    wtp.run([&](ampp::transport_context& ctx) { widest.run(ctx, kWidestSrc); });
    ampp::transport btp(sim_config(ranks, seed, ps));
    algo::bfs_solver bfs(btp, g);
    btp.run([&](ampp::transport_context& ctx) { bfs.run_fixed_point(ctx, kBfsSrc); });
    triple_bits separate = bits_of(sssp.dist(), widest.width(), bfs.depth());
    for (ampp::transport* tp : {&stp, &wtp, &btp}) {
      const auto s = tp->obs().snapshot();
      assert_fault_consistency(s);
      assert_occupancy_conserved(*tp);
      events += fault_events(s);
    }

    // One fused solve: all three analytics in a single fixed point.
    ampp::transport ftp(sim_config(ranks, seed, ps));
    algo::fused_triple_solver fused(ftp, g, weight, cap);
    ftp.run([&](ampp::transport_context& ctx) {
      fused.run(ctx, {.sssp = kSsspSrc, .widest = kWidestSrc, .bfs = kBfsSrc});
    });
    triple_bits fused_bits = bits_of(fused.dist(), fused.width(), fused.depth());

    ASSERT_EQ(fused_bits, separate) << "fused diverged from separate solves";
    for (vertex_id v = 0; v < kN; ++v) {
      ASSERT_DOUBLE_EQ(fused.dist()[v], dist_oracle[v]) << "v=" << v;
      ASSERT_DOUBLE_EQ(fused.width()[v], width_oracle[v]) << "v=" << v;
      if (depth_oracle[v] < 0)
        ASSERT_EQ(fused.depth()[v], fused.unreachable_depth()) << "v=" << v;
      else
        ASSERT_EQ(fused.depth()[v], static_cast<std::uint64_t>(depth_oracle[v]))
            << "v=" << v;
    }
    const auto fs = ftp.obs().snapshot();
    assert_fault_consistency(fs);
    const family_traffic ft =
        assert_fused_family_conserved(fs, fused.layout().record_bytes);
    total.fused += ft.fused;
    total.solo += ft.solo;
    assert_occupancy_conserved(ftp);
    events += fault_events(fs);
  });
  // Distinct sources must exercise both dispatch shapes somewhere in the
  // grid: multi-member waves on the fused lane, single-member tails on
  // the per-member solo lanes.
  EXPECT_GT(total.fused, 0u) << "no multi-member wave ever took the fused lane";
  EXPECT_GT(total.solo, 0u) << "no single-member wave ever took a solo lane";
}

TEST(FusionSweep, TogglesBitIdentical) {
  // The fused lane's batch kernels and sender reduction are pure
  // transport optimizations: forcing both toggles both ways under every
  // fault plan must produce bit-identical triples.
  sweep("fused_toggles", [](std::uint64_t seed, ampp::rank_t ranks,
                            const plan_spec& ps, std::uint64_t& events) {
    distributed_graph g(kN, fusion_edges(seed), distribution::cyclic(kN, ranks));
    auto weight = fusion_weights(g);
    auto cap = fusion_caps(g);
    using tog = pattern::compile_options::toggle;
    std::vector<triple_bits> runs;
    for (const tog t : {tog::on, tog::off}) {
      ampp::transport tp(sim_config(ranks, seed, ps));
      algo::fused_triple_solver fused(
          tp, g, weight, cap,
          pattern::compile_options{.batch_kernel = t, .fast_reduction = t});
      ASSERT_EQ(fused.action().plan().batch_kernel, t == tog::on);
      ASSERT_EQ(fused.action().plan().fast_reduction, t == tog::on);
      ASSERT_EQ(fused.action().plan().conditions, 3);
      ASSERT_TRUE(fused.action().plan().fast_path);
      tp.run([&](ampp::transport_context& ctx) {
        fused.run(ctx, {.sssp = kSsspSrc, .widest = kWidestSrc, .bfs = kBfsSrc});
      });
      const auto s = tp.obs().snapshot();
      assert_fault_consistency(s);
      assert_fused_family_conserved(s, fused.layout().record_bytes);
      assert_occupancy_conserved(tp);
      events += fault_events(s);
      runs.push_back(bits_of(fused.dist(), fused.width(), fused.depth()));
    }
    ASSERT_EQ(runs[0], runs[1]) << "batch/reduction toggles changed the fixed point";
  });
}

TEST(FusionSweep, RerunRepeatsBitIdentically) {
  // A second run on the same solver (fresh reset, including the fused
  // action's per-member emission tracking) must reproduce the first —
  // stale change-tracking state leaking across runs would skip required
  // emissions and show up here as a diverged map.
  sweep("fused_rerun", [](std::uint64_t seed, ampp::rank_t ranks,
                          const plan_spec& ps, std::uint64_t& events) {
    distributed_graph g(kN, fusion_edges(seed), distribution::cyclic(kN, ranks));
    auto weight = fusion_weights(g);
    auto cap = fusion_caps(g);
    ampp::transport tp(sim_config(ranks, seed, ps));
    algo::fused_triple_solver fused(tp, g, weight, cap);
    std::vector<triple_bits> runs;
    for (int pass = 0; pass < 2; ++pass) {
      tp.run([&](ampp::transport_context& ctx) {
        fused.run(ctx, {.sssp = kSsspSrc, .widest = kWidestSrc, .bfs = kBfsSrc});
      });
      runs.push_back(bits_of(fused.dist(), fused.width(), fused.depth()));
    }
    ASSERT_EQ(runs[0], runs[1]) << "re-run diverged (emission reset broken?)";
    const auto s = tp.obs().snapshot();
    assert_fault_consistency(s);
    assert_occupancy_conserved(tp);
    events += fault_events(s);
  });
}

TEST(FusionSweep, FusedWireBeatsSeparateOnCleanTransport) {
  // The perf claim behind the fused wire format, checked deterministically
  // (no fault plan, so no retry noise): a shared-source triple must move
  // fewer wire bytes fused than the three separate solves combined.
  for (const std::uint64_t seed : {1ull, 2ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const ampp::rank_t ranks = 2;
    distributed_graph g(kN, fusion_edges(seed), distribution::cyclic(kN, ranks));
    auto weight = fusion_weights(g);
    auto cap = fusion_caps(g);
    const auto clean = [&] {
      return ampp::transport_config{.n_ranks = ranks,
                                    .coalescing_size = 8,
                                    .seed = substream_seed(seed, 3)};
    };
    std::uint64_t separate_wire = 0;
    {
      ampp::transport tp(clean());
      algo::sssp_solver sssp(tp, g, weight);
      tp.run([&](ampp::transport_context& ctx) { sssp.run_fixed_point(ctx, 0); });
      separate_wire += tp.obs().snapshot().core.wire_bytes_sent;
    }
    {
      ampp::transport tp(clean());
      algo::widest_path_solver widest(tp, g, cap);
      tp.run([&](ampp::transport_context& ctx) { widest.run(ctx, 0); });
      separate_wire += tp.obs().snapshot().core.wire_bytes_sent;
    }
    {
      ampp::transport tp(clean());
      algo::bfs_solver bfs(tp, g);
      tp.run([&](ampp::transport_context& ctx) { bfs.run_fixed_point(ctx, 0); });
      separate_wire += tp.obs().snapshot().core.wire_bytes_sent;
    }
    ampp::transport ftp(clean());
    algo::fused_triple_solver fused(ftp, g, weight, cap);
    ftp.run([&](ampp::transport_context& ctx) { fused.run(ctx, {0, 0, 0}); });
    const std::uint64_t fused_wire = ftp.obs().snapshot().core.wire_bytes_sent;
    EXPECT_LT(fused_wire, separate_wire)
        << "fused wire " << fused_wire << "B vs separate " << separate_wire << "B";
  }
}

}  // namespace
}  // namespace dpg::sim
