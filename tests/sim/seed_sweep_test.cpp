// Deterministic chaos simulator: every algorithm in the repo, swept across
// fault plans x rank counts x seeds, checked bit-for-bit (or within the
// documented float tolerance for PageRank) against the sequential
// baselines in src/algo/baselines. The transport's fault layer (reorder,
// duplicate, delay, drop-with-retry) must be invisible to algorithm
// results, and the obs counters must satisfy the conservation laws at
// quiescence. Every failure message carries the reproducing seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algo/baselines.hpp"
#include "algo/bfs.hpp"
#include "algo/cc.hpp"
#include "algo/coloring.hpp"
#include "algo/kcore.hpp"
#include "algo/mis.hpp"
#include "algo/pagerank.hpp"
#include "algo/sssp.hpp"
#include "graph/generators.hpp"
#include "sim_harness.hpp"

namespace dpg::sim {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;
using graph::vertex_id;

constexpr vertex_id kN = 96;
constexpr std::uint64_t kM = 480;

std::vector<graph::edge> sim_edges(std::uint64_t seed, bool symmetric) {
  auto edges = graph::erdos_renyi(kN, kM, substream_seed(seed, 1));
  return symmetric ? graph::symmetrize(edges) : edges;
}

pmap::edge_property_map<double> sim_weights(const distributed_graph& g) {
  return pmap::edge_property_map<double>(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 17, 8.0);
  });
}

/// Runs `body` over the full grid, attaching a reproducing-seed trace to
/// every grid point, and asserts the plans injected at least one countable
/// fault somewhere in the sweep (a sweep that never faults tests nothing).
template <class Body>
void sweep(const char* algo, Body&& body) {
  std::uint64_t events = 0;
  for (const std::uint64_t seed : sweep_seeds())
    for (const ampp::rank_t ranks : {ampp::rank_t{2}, ampp::rank_t{4}})
      for (const plan_spec& ps : fault_plans()) {
        SCOPED_TRACE(repro(algo, ps.name, ranks, seed));
        body(seed, ranks, ps, events);
        if (::testing::Test::HasFatalFailure()) return;
      }
  EXPECT_GT(events, 0u) << algo << ": no fault plan ever fired";
}

TEST(SeedSweep, SsspFixedPoint) {
  sweep("sssp_fixed_point", [](std::uint64_t seed, ampp::rank_t ranks,
                               const plan_spec& ps, std::uint64_t& events) {
    distributed_graph g(kN, sim_edges(seed, false), distribution::cyclic(kN, ranks));
    auto weight = sim_weights(g);
    const auto oracle = algo::dijkstra(g, weight, 0);
    ampp::transport tp(sim_config(ranks, seed, ps));
    algo::sssp_solver solver(tp, g, weight);
    tp.run([&](ampp::transport_context& ctx) { solver.run_fixed_point(ctx, 0); });
    for (vertex_id v = 0; v < kN; ++v)
      ASSERT_DOUBLE_EQ(solver.dist()[v], oracle[v]) << "v=" << v;
    const auto s = tp.obs().snapshot();
    assert_fault_consistency(s);
    assert_occupancy_conserved(tp);
    events += fault_events(s);
  });
}

TEST(SeedSweep, SsspFixedPointCompileToggles) {
  // The compiled fast relax kernel and the compact wire layout are pure
  // transport optimizations: forcing each toggle both ways under every
  // fault plan must still reproduce the oracle bit-for-bit, and the two
  // runs must agree with each other exactly.
  sweep("sssp_fp_toggles", [](std::uint64_t seed, ampp::rank_t ranks,
                              const plan_spec& ps, std::uint64_t& events) {
    distributed_graph g(kN, sim_edges(seed, false), distribution::cyclic(kN, ranks));
    auto weight = sim_weights(g);
    const auto oracle = algo::dijkstra(g, weight, 0);
    using tog = pattern::compile_options::toggle;
    std::vector<std::vector<double>> runs;
    for (const tog t : {tog::on, tog::off}) {
      ampp::transport tp(sim_config(ranks, seed, ps));
      algo::sssp_solver solver(tp, g, weight, pmap::lock_scheme::per_vertex,
                               pattern::compile_options{.fast_path = t, .compact_wire = t});
      ASSERT_EQ(solver.relax().plan().fast_path, t == tog::on);
      tp.run([&](ampp::transport_context& ctx) { solver.run_fixed_point(ctx, 0); });
      for (vertex_id v = 0; v < kN; ++v)
        ASSERT_DOUBLE_EQ(solver.dist()[v], oracle[v])
            << "v=" << v << " fast=" << (t == tog::on);
      const auto s = tp.obs().snapshot();
      assert_fault_consistency(s);
      assert_occupancy_conserved(tp);
      events += fault_events(s);
      runs.emplace_back();
      for (vertex_id v = 0; v < kN; ++v) runs.back().push_back(solver.dist()[v]);
    }
    ASSERT_EQ(runs[0], runs[1]);
  });
}

TEST(SeedSweep, SsspDeltaStepping) {
  sweep("sssp_delta", [](std::uint64_t seed, ampp::rank_t ranks, const plan_spec& ps,
                         std::uint64_t& events) {
    distributed_graph g(kN, sim_edges(seed, false), distribution::cyclic(kN, ranks));
    auto weight = sim_weights(g);
    const auto oracle = algo::dijkstra(g, weight, 0);
    ampp::transport tp(sim_config(ranks, seed, ps));
    algo::sssp_solver solver(tp, g, weight);
    tp.run([&](ampp::transport_context& ctx) { solver.run_delta(ctx, 0, 2.0); });
    for (vertex_id v = 0; v < kN; ++v)
      ASSERT_DOUBLE_EQ(solver.dist()[v], oracle[v]) << "v=" << v;
    const auto s = tp.obs().snapshot();
    assert_fault_consistency(s);
    assert_occupancy_conserved(tp);
    events += fault_events(s);
  });
}

TEST(SeedSweep, SsspMutateThenRepair) {
  // Versioned topology mutation under chaos: solve, apply_edges() in place
  // at the non-morphing boundary, then warm-repair with the SAME solver.
  // Faults must stay invisible — the repaired labels must be bit-identical
  // to a sequential oracle on the mutated graph for every plan — and the
  // graph's obs counters must record exactly one mutation.
  sweep("sssp_mutate_repair", [](std::uint64_t seed, ampp::rank_t ranks,
                                 const plan_spec& ps, std::uint64_t& events) {
    distributed_graph g(kN, sim_edges(seed, false), distribution::cyclic(kN, ranks));
    auto weight = sim_weights(g);
    ampp::transport tp(sim_config(ranks, seed, ps));
    g.attach_stats(tp.stats());
    algo::sssp_solver solver(tp, g, weight);
    tp.run([&](ampp::transport_context& ctx) { solver.run_fixed_point(ctx, 0); });

    // Shortcut edges drawn from a dedicated substream so every plan in the
    // sweep mutates identically.
    std::vector<graph::edge> extra;
    dpg::xoshiro256ss rng(substream_seed(seed, 9));
    for (int i = 0; i < 6; ++i) extra.push_back({rng.below(kN), rng.below(kN)});
    g.apply_edges(extra);

    const auto oracle = algo::dijkstra(g, weight, 0);
    std::vector<vertex_id> sources;
    for (const auto& e : extra) sources.push_back(e.src);
    tp.run([&](ampp::transport_context& ctx) { solver.repair(ctx, sources); });

    for (vertex_id v = 0; v < kN; ++v)
      ASSERT_DOUBLE_EQ(solver.dist()[v], oracle[v]) << "v=" << v;
    const auto s = tp.obs().snapshot();
    ASSERT_EQ(s.core.graph_mutations, 1u);
    ASSERT_EQ(s.core.delta_edges, extra.size());
    assert_fault_consistency(s);
    assert_occupancy_conserved(tp);
    events += fault_events(s);
  });
}

TEST(SeedSweep, Bfs) {
  sweep("bfs", [](std::uint64_t seed, ampp::rank_t ranks, const plan_spec& ps,
                  std::uint64_t& events) {
    distributed_graph g(kN, sim_edges(seed, false), distribution::cyclic(kN, ranks));
    const auto oracle = algo::bfs_levels(g, 0);
    ampp::transport tp(sim_config(ranks, seed, ps));
    algo::bfs_solver bfs(tp, g);
    tp.run([&](ampp::transport_context& ctx) { bfs.run_fixed_point(ctx, 0); });
    for (vertex_id v = 0; v < kN; ++v) {
      if (oracle[v] < 0)
        ASSERT_EQ(bfs.depth()[v], bfs.unreachable_depth()) << "v=" << v;
      else
        ASSERT_EQ(bfs.depth()[v], static_cast<std::uint64_t>(oracle[v])) << "v=" << v;
    }
    const auto s = tp.obs().snapshot();
    assert_fault_consistency(s);
    assert_occupancy_conserved(tp);
    events += fault_events(s);
  });
}

TEST(SeedSweep, ConnectedComponents) {
  sweep("cc", [](std::uint64_t seed, ampp::rank_t ranks, const plan_spec& ps,
                 std::uint64_t& events) {
    distributed_graph g(kN, sim_edges(seed, true), distribution::cyclic(kN, ranks));
    const auto oracle = algo::cc_union_find(g);
    algo::cc_solver cc(g, sim_config(ranks, seed, ps));
    cc.solve();
    // Partition equality: the labellings must induce the same equivalence
    // classes (labels themselves are representative-dependent).
    std::vector<vertex_id> fwd(kN, graph::invalid_vertex), bwd(kN, graph::invalid_vertex);
    for (vertex_id v = 0; v < kN; ++v) {
      const vertex_id a = oracle[v], b = cc.components()[v];
      if (fwd[a] == graph::invalid_vertex) fwd[a] = b;
      if (bwd[b] == graph::invalid_vertex) bwd[b] = a;
      ASSERT_EQ(fwd[a], b) << "v=" << v;
      ASSERT_EQ(bwd[b], a) << "v=" << v;
    }
    const auto s = cc.transport().obs().snapshot();
    assert_fault_consistency(s);
    assert_occupancy_conserved(cc.transport());
    events += fault_events(s);
  });
}

TEST(SeedSweep, PageRank) {
  sweep("pagerank", [](std::uint64_t seed, ampp::rank_t ranks, const plan_spec& ps,
                       std::uint64_t& events) {
    distributed_graph g(kN, sim_edges(seed, false), distribution::cyclic(kN, ranks));
    const auto oracle = algo::pagerank(g, 0.85, 12);
    ampp::transport tp(sim_config(ranks, seed, ps));
    algo::pagerank_solver pr(tp, g);
    tp.run([&](ampp::transport_context& ctx) { pr.run(ctx, 0.85, 12); });
    // Contribution arrival order varies with delivery order, so the sums
    // are float-associativity-close rather than bit-identical.
    for (vertex_id v = 0; v < kN; ++v)
      ASSERT_NEAR(pr.ranks()[v], oracle[v], 1e-9) << "v=" << v;
    const auto s = tp.obs().snapshot();
    assert_fault_consistency(s);
    assert_occupancy_conserved(tp);
    events += fault_events(s);
  });
}

TEST(SeedSweep, KCore) {
  sweep("kcore", [](std::uint64_t seed, ampp::rank_t ranks, const plan_spec& ps,
                    std::uint64_t& events) {
    distributed_graph g(kN, sim_edges(seed, true), distribution::cyclic(kN, ranks));
    const auto oracle = algo::kcore_peel(g);
    std::uint64_t degeneracy = 0;
    for (vertex_id v = 0; v < kN; ++v) degeneracy = std::max(degeneracy, oracle[v]);
    ampp::transport tp(sim_config(ranks, seed, ps));
    algo::kcore_solver solver(tp, g);
    std::uint64_t got_degeneracy = 0;
    tp.run([&](ampp::transport_context& ctx) {
      const std::uint64_t d = solver.run(ctx);  // allreduce_max: same on all ranks
      if (ctx.rank() == 0) got_degeneracy = d;
    });
    ASSERT_EQ(got_degeneracy, degeneracy);
    for (vertex_id v = 0; v < kN; ++v)
      ASSERT_EQ(solver.coreness()[v], oracle[v]) << "v=" << v;
    const auto s = tp.obs().snapshot();
    assert_fault_consistency(s);
    assert_occupancy_conserved(tp);
    events += fault_events(s);
  });
}

TEST(SeedSweep, Coloring) {
  sweep("coloring", [](std::uint64_t seed, ampp::rank_t ranks, const plan_spec& ps,
                       std::uint64_t& events) {
    distributed_graph g(kN, sim_edges(seed, true), distribution::cyclic(kN, ranks));
    const std::uint64_t algo_seed = substream_seed(seed, 4);
    // Luby coloring is randomized but delivery-order independent: the
    // result is a pure function of the priority seed, so a fault-free run
    // is an exact oracle for the faulty one.
    ampp::transport ref_tp(ampp::transport_config{
        .n_ranks = ranks, .coalescing_size = 8, .seed = substream_seed(seed, 3)});
    algo::coloring_solver ref(ref_tp, g);
    ref_tp.run([&](ampp::transport_context& ctx) { ref.run(ctx, algo_seed); });

    ampp::transport tp(sim_config(ranks, seed, ps));
    algo::coloring_solver cs(tp, g);
    tp.run([&](ampp::transport_context& ctx) { cs.run(ctx, algo_seed); });
    for (vertex_id v = 0; v < kN; ++v) {
      ASSERT_NE(cs.colors()[v], algo::coloring_solver::uncolored) << "v=" << v;
      ASSERT_EQ(cs.colors()[v], ref.colors()[v]) << "v=" << v;
    }
    for (vertex_id v = 0; v < kN; ++v)
      for (const vertex_id u : g.adjacent(v))
        if (u != v) {
          ASSERT_NE(cs.colors()[v], cs.colors()[u]) << "edge " << v << "-" << u;
        }
    const auto s = tp.obs().snapshot();
    assert_fault_consistency(s);
    assert_occupancy_conserved(tp);
    events += fault_events(s);
  });
}

TEST(SeedSweep, Mis) {
  sweep("mis", [](std::uint64_t seed, ampp::rank_t ranks, const plan_spec& ps,
                  std::uint64_t& events) {
    distributed_graph g(kN, sim_edges(seed, true), distribution::cyclic(kN, ranks));
    const std::uint64_t algo_seed = substream_seed(seed, 4);
    ampp::transport ref_tp(ampp::transport_config{
        .n_ranks = ranks, .coalescing_size = 8, .seed = substream_seed(seed, 3)});
    algo::mis_solver ref(ref_tp, g);
    ref_tp.run([&](ampp::transport_context& ctx) { ref.run(ctx, algo_seed); });

    ampp::transport tp(sim_config(ranks, seed, ps));
    algo::mis_solver mis(tp, g);
    tp.run([&](ampp::transport_context& ctx) { mis.run(ctx, algo_seed); });
    for (vertex_id v = 0; v < kN; ++v)
      ASSERT_EQ(mis.in_set(v), ref.in_set(v)) << "v=" << v;
    // Structural validity: independent and maximal.
    for (vertex_id v = 0; v < kN; ++v) {
      bool in_neighbor = false;
      for (const vertex_id u : g.adjacent(v)) {
        if (u == v) continue;
        if (mis.in_set(v)) {
          ASSERT_FALSE(mis.in_set(u)) << "edge " << v << "-" << u;
        }
        in_neighbor = in_neighbor || mis.in_set(u);
      }
      if (!mis.in_set(v)) {
        ASSERT_TRUE(in_neighbor) << "v=" << v << " not covered";
      }
    }
    const auto s = tp.obs().snapshot();
    assert_fault_consistency(s);
    assert_occupancy_conserved(tp);
    events += fault_events(s);
  });
}

}  // namespace
}  // namespace dpg::sim
