// The streaming-graph determinism sweep: mixed add/delete mutation batches
// followed by warm repair must reproduce a from-scratch oracle *exactly* —
// across the full fault-plan × rank × seed grid.
//
// Two layers are swept:
//   1. the solver layer: sssp decremental repair (invalidate_unsupported +
//      re-relax from the frontier) against Dijkstra on the mutated graph;
//   2. the serving layer: serve::server::apply_mutation + repair_query for
//      sssp / cc / k-core against the sequential baselines, asserting the
//      *warm* path actually ran (warm_repair), not a silent cold fallback.
//
// SSSP distances are a fixed point of a monotone relaxation and the warm cc
// and k-core maintainers are deterministic sequential structures, so every
// comparison is exact (ASSERT_DOUBLE_EQ / integer equality) — never an
// epsilon. Tombstoned edges must be invisible to the oracles too: the
// baselines walk the same live iterators the distributed solvers do.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "algo/baselines.hpp"
#include "algo/sessions.hpp"
#include "algo/sssp.hpp"
#include "graph/generators.hpp"
#include "serve/server.hpp"
#include "sim_harness.hpp"

namespace dpg::sim {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;
using graph::vertex_id;

constexpr vertex_id kN = 96;
constexpr std::uint64_t kM = 480;
constexpr int kBatches = 3;   // mutation batches replayed per grid point
constexpr int kDeletes = 6;   // edges (or pairs) tombstoned per batch
constexpr int kAdds = 6;      // edges (or pairs) appended per batch

pmap::edge_property_map<double> sim_weights(const distributed_graph& g) {
  return pmap::edge_property_map<double>(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 17, 8.0);
  });
}

/// Runs `body` over the full grid, attaching a reproducing-seed trace to
/// every grid point, and asserts the plans injected at least one countable
/// fault somewhere in the sweep (a sweep that never faults tests nothing).
template <class Body>
void sweep(const char* algo, Body&& body) {
  std::uint64_t events = 0;
  for (const std::uint64_t seed : sweep_seeds())
    for (const ampp::rank_t ranks : {ampp::rank_t{2}, ampp::rank_t{4}})
      for (const plan_spec& ps : fault_plans()) {
        SCOPED_TRACE(repro(algo, ps.name, ranks, seed));
        body(seed, ranks, ps, events);
        if (::testing::Test::HasFatalFailure()) return;
      }
  EXPECT_GT(events, 0u) << algo << ": no fault plan ever fired";
}

TEST(StreamingSweep, SsspDecrementalRepairMatchesDijkstra) {
  // Solver-layer streaming: solve once, then replay mutation batches that
  // both append and tombstone edges. After every batch the decremental
  // invalidation + frontier re-relax must land on exactly the distances
  // Dijkstra computes on the mutated graph's live view.
  sweep("sssp_streaming", [](std::uint64_t seed, ampp::rank_t ranks,
                             const plan_spec& ps, std::uint64_t& events) {
    // `live` mirrors the graph's live edge multiset; deletions draw from it
    // so every victim is guaranteed to have a live instance to resolve.
    std::vector<graph::edge> live =
        graph::erdos_renyi(kN, kM, substream_seed(seed, 1));
    distributed_graph g(kN, live, distribution::cyclic(kN, ranks));
    auto weight = sim_weights(g);
    ampp::transport tp(sim_config(ranks, seed, ps));
    g.attach_stats(tp.stats());
    algo::sssp_solver solver(tp, g, weight);
    tp.run([&](ampp::transport_context& ctx) { solver.run_fixed_point(ctx, 0); });

    dpg::xoshiro256ss rng(substream_seed(seed, 9));
    for (int b = 0; b < kBatches; ++b) {
      std::vector<graph::edge> adds, dels;
      for (int i = 0; i < kDeletes; ++i) {
        const std::size_t idx = static_cast<std::size_t>(rng.below(live.size()));
        dels.push_back(live[idx]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      }
      for (int i = 0; i < kAdds; ++i) {
        const graph::edge e{static_cast<vertex_id>(rng.below(kN)),
                            static_cast<vertex_id>(rng.below(kN))};
        adds.push_back(e);
        live.push_back(e);
      }
      g.apply_edges(adds);
      g.remove_edges(g.resolve_edges(dels));
      ASSERT_EQ(g.num_edges(), live.size());

      // Boundary invalidation, then re-relax from the frontier plus the
      // added-edge sources (the two seed families of a mixed batch).
      std::vector<vertex_id> seeds = solver.invalidate_unsupported();
      for (const graph::edge& e : adds) seeds.push_back(e.src);
      tp.run([&](ampp::transport_context& ctx) { solver.repair(ctx, seeds); });

      const std::vector<double> oracle = algo::dijkstra(g, weight, 0);
      for (vertex_id v = 0; v < kN; ++v)
        ASSERT_DOUBLE_EQ(solver.dist()[v], oracle[v]) << "batch " << b << " v=" << v;
    }

    const auto s = tp.obs().snapshot();
    assert_fault_consistency(s);
    assert_occupancy_conserved(tp);
    EXPECT_EQ(s.core.tombstoned_edges,
              static_cast<std::uint64_t>(kBatches * kDeletes));
    events += fault_events(s);
  });
}

/// Canonical (min, max) pair set for the symmetric simple graphs the cc and
/// k-core maintainers require. Batches add absent pairs and delete present
/// ones, always as both directed halves, so the graph stays simple and
/// symmetric across the whole stream.
struct pair_stream {
  std::vector<std::pair<vertex_id, vertex_id>> pairs;
  std::set<std::pair<vertex_id, vertex_id>> present;

  explicit pair_stream(std::span<const graph::edge> edges) {
    for (const graph::edge& e : edges)
      if (e.src < e.dst && present.insert({e.src, e.dst}).second)
        pairs.push_back({e.src, e.dst});
  }

  void deletes(dpg::xoshiro256ss& rng, int count, std::vector<graph::edge>& out) {
    for (int i = 0; i < count && !pairs.empty(); ++i) {
      const std::size_t idx = static_cast<std::size_t>(rng.below(pairs.size()));
      const auto [u, v] = pairs[idx];
      pairs.erase(pairs.begin() + static_cast<std::ptrdiff_t>(idx));
      present.erase({u, v});
      out.push_back({u, v});
      out.push_back({v, u});
    }
  }

  void adds(dpg::xoshiro256ss& rng, int count, std::vector<graph::edge>& out) {
    for (int i = 0; i < count; ++i) {
      vertex_id u = 0, v = 0;
      do {
        u = static_cast<vertex_id>(rng.below(kN));
        v = static_cast<vertex_id>(rng.below(kN));
        if (u > v) std::swap(u, v);
      } while (u == v || present.contains({u, v}));
      present.insert({u, v});
      pairs.push_back({u, v});
      out.push_back({u, v});
      out.push_back({v, u});
    }
  }
};

TEST(StreamingSweep, ServedStreamingRepairMatchesOracles) {
  // Serving-layer streaming: one server fronting a simple symmetric graph
  // answers sssp / cc / k-core queries across a stream of mixed mutation
  // batches. Every repair_query must (a) actually take the warm path —
  // warm_repair proves the decremental machinery ran, not the full-solve
  // fallback — and (b) be exactly the sequential oracle on the mutated
  // live view. PageRank rides along once per point to cover the
  // repair-as-full-solve fallback for algorithms without a warm path.
  sweep("served_streaming", [](std::uint64_t seed, ampp::rank_t ranks,
                               const plan_spec& ps, std::uint64_t& events) {
    const std::vector<graph::edge> base = graph::simplify(graph::symmetrize(
        graph::erdos_renyi(kN, kM / 2, substream_seed(seed, 1))));
    pair_stream stream(base);
    distributed_graph g(kN, base, distribution::cyclic(kN, ranks));
    auto weight = sim_weights(g);

    serve::server_config cfg;
    cfg.machine = {.n_ranks = ranks};
    cfg.tuning = {.coalescing_size = 8,
                  .seed = substream_seed(seed, 3),
                  .faults = ps.make(substream_seed(seed, 2))};
    serve::server srv(g, weight, cfg);

    const serve::query qs{serve::algorithm::sssp, {.source = 0}, 0};
    const serve::query qc{serve::algorithm::cc, {}, 0};
    const serve::query qk{serve::algorithm::kcore, {}, 0};

    // Cold solves pin every session (and its ride-along maintainer) to the
    // pre-stream version; subsequent repairs chain batch by batch.
    for (const serve::query& q : {qs, qc, qk}) {
      const auto r = srv.query(q);
      ASSERT_NE(r, nullptr);
      EXPECT_FALSE(r->warm_repair);
      assert_fault_consistency(r->stats_delta);
      events += fault_events(r->stats_delta);
    }

    dpg::xoshiro256ss rng(substream_seed(seed, 9));
    for (int b = 0; b < kBatches; ++b) {
      std::vector<graph::edge> adds, dels;
      stream.deletes(rng, kDeletes, dels);
      stream.adds(rng, kAdds, adds);
      srv.apply_mutation(adds, dels);

      const auto rs = srv.repair_query(qs);
      const auto rc = srv.repair_query(qc);
      const auto rk = srv.repair_query(qk);
      ASSERT_TRUE(rs->warm_repair) << "sssp fell back to a cold solve, batch " << b;
      ASSERT_TRUE(rc->warm_repair) << "cc fell back to a cold solve, batch " << b;
      ASSERT_TRUE(rk->warm_repair) << "kcore fell back to a cold solve, batch " << b;
      EXPECT_EQ(rs->graph_version, srv.version());
      assert_fault_consistency(rs->stats_delta);
      events += fault_events(rs->stats_delta);

      const std::vector<double> want_d = algo::dijkstra(g, weight, 0);
      const std::vector<vertex_id> want_cc = algo::cc_union_find(g);
      const std::vector<std::uint64_t> want_core = algo::kcore_peel(g);
      for (vertex_id v = 0; v < kN; ++v) {
        ASSERT_DOUBLE_EQ(rs->value_as_double(v), want_d[v])
            << "sssp batch " << b << " v=" << v;
        ASSERT_EQ(rc->value(v), want_cc[v]) << "cc batch " << b << " v=" << v;
        ASSERT_EQ(rk->value(v), want_core[v]) << "kcore batch " << b << " v=" << v;
      }
    }

    // The fallback path: pagerank has no warm repair, so repair_query must
    // transparently full-solve at the live version.
    const auto rp =
        srv.repair_query({serve::algorithm::pagerank, {.source = 0}, 0});
    ASSERT_NE(rp, nullptr);
    EXPECT_FALSE(rp->warm_repair);
    EXPECT_EQ(rp->graph_version, srv.version());
    events += fault_events(rp->stats_delta);
  });
}

}  // namespace
}  // namespace dpg::sim
