// Shared plumbing for the deterministic fault-injection simulator suite.
//
// The seed-sweep tests run every algorithm across a grid of
//
//     fault plans  x  rank counts  x  sweep seeds
//
// and compare the results against the sequential baselines. Every fault
// decision in the transport is a pure function of the seeds wired up here,
// so any failure reproduces exactly from the seed printed by repro() —
// rerun a single point of the grid with e.g.
//
//     DPG_SIM_SEEDS=5 ctest -L sim --output-on-failure
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "ampp/transport.hpp"
#include "util/rng.hpp"

namespace dpg::sim {

/// A named fault-plan factory; the sweep instantiates the plan per seed so
/// every grid point gets an independent fault pattern.
struct plan_spec {
  const char* name;
  ampp::fault_plan (*make)(std::uint64_t seed);
};

/// The canned plans the CI sweep exercises (ISSUE 2 asks for >= 3).
inline const std::vector<plan_spec>& fault_plans() {
  static const std::vector<plan_spec> specs = {
      {"scramble", [](std::uint64_t s) { return ampp::fault_plan::scramble(s); }},
      {"lossy", [](std::uint64_t s) { return ampp::fault_plan::lossy(s); }},
      {"chaos", [](std::uint64_t s) { return ampp::fault_plan::chaos(s); }},
      {"control_chaos",
       [](std::uint64_t s) { return ampp::fault_plan::control_chaos(s); }},
  };
  return specs;
}

/// Seeds to sweep: eight by default, overridable with a comma-separated
/// DPG_SIM_SEEDS (the reproduction knob printed on failure).
inline std::vector<std::uint64_t> sweep_seeds() {
  if (const char* env = std::getenv("DPG_SIM_SEEDS")) {
    std::vector<std::uint64_t> seeds;
    std::stringstream ss(env);
    std::string tok;
    while (std::getline(ss, tok, ','))
      if (!tok.empty()) seeds.push_back(std::stoull(tok));
    if (!seeds.empty()) return seeds;
  }
  return {1, 2, 3, 4, 5, 6, 7, 8};
}

/// One line identifying a grid point, attached via SCOPED_TRACE so every
/// assertion failure carries its reproducing seed.
inline std::string repro(const char* algo, const char* plan, ampp::rank_t ranks,
                         std::uint64_t seed) {
  std::ostringstream os;
  os << "algo=" << algo << " plan=" << plan << " ranks=" << static_cast<unsigned>(ranks)
     << " seed=" << seed << "  (reproduce: DPG_SIM_SEEDS=" << seed << ")";
  return os.str();
}

/// Transport configuration for one grid point. The graph, the plan, and the
/// transport draw from disjoint substreams of the sweep seed so changing
/// one never perturbs the others.
inline ampp::transport_config sim_config(ampp::rank_t ranks, std::uint64_t seed,
                                         const plan_spec& ps,
                                         std::size_t coalescing = 8) {
  return ampp::transport_config{.n_ranks = ranks,
                                .coalescing_size = coalescing,
                                .seed = substream_seed(seed, 3),
                                .faults = ps.make(substream_seed(seed, 2))};
}

/// The conservation laws every quiescent faulty run must satisfy: all
/// payloads sent were dispatched exactly once, every drop was recovered by
/// a retry, every injected duplicate was suppressed by the dedup window,
/// and the per-type rows still sum to the core totals. The flush hot-path
/// counters obey their own laws: every envelope is built out of a lane the
/// flush actually visited, and every pooled-buffer reuse built exactly one
/// envelope.
inline void assert_fault_consistency(const obs::stats_snapshot& s) {
  EXPECT_EQ(s.core.messages_sent, s.core.handler_invocations);
  EXPECT_EQ(s.core.envelopes_dropped, s.core.envelopes_retried);
  EXPECT_EQ(s.core.envelopes_duplicated, s.core.duplicates_suppressed);
  EXPECT_LE(s.core.envelopes_sent, s.core.flush_lane_visits);
  EXPECT_LE(s.core.pool_reuses, s.core.envelopes_sent);
  // Every record a batch kernel consumed was also counted as a handled
  // payload (batch dispatch replaces the per-record calls, not the
  // envelope-level accounting).
  EXPECT_LE(s.core.batch_records, s.core.handler_invocations);
  EXPECT_LE(s.core.batch_kernels_run, s.core.batch_records);
  std::uint64_t sent = 0, handled = 0;
  std::uint64_t envs = 0, wire = 0, bytes = 0;
  for (const obs::type_counters& t : s.per_type) {
    // Wire accounting covers every type, control plane included: each
    // envelope flush records exactly one (envelope, wire_bytes) pair, and
    // no type's wire traffic can exceed its envelope count times its
    // largest single envelope.
    envs += t.envelopes;
    wire += t.wire_bytes;
    bytes += t.bytes;
    EXPECT_LE(t.wire_bytes, t.envelopes * t.max_env_bytes) << "type " << t.name;
    if (t.internal) continue;
    sent += t.sent;
    handled += t.handled;
    EXPECT_EQ(t.sent, t.handled) << "type " << t.name;
  }
  EXPECT_EQ(sent, s.core.messages_sent);
  EXPECT_EQ(handled, s.core.handler_invocations);
  EXPECT_EQ(envs, s.core.envelopes_sent);
  EXPECT_EQ(wire, s.core.wire_bytes_sent);
  EXPECT_EQ(bytes, s.core.bytes_sent);
  // Compact wire layouts truncate — they never pad.
  EXPECT_LE(s.core.wire_bytes_sent, s.core.bytes_sent);
}

/// Occupancy-counter conservation: after a quiescent run, every O(1)
/// per-(type,rank) occupancy counter must equal a brute-force recount of
/// buffered payloads + used reduction slots under the lane locks, so
/// `rank_buffers_empty` (a counter read) agrees with scanning — under every
/// fault plan, not just clean runs.
inline void assert_occupancy_conserved(const ampp::transport& tp) {
  EXPECT_TRUE(tp.occupancy_consistent())
      << "occupancy counters drifted from lane contents";
}

/// How many countable fault events a run injected (reorders are invisible
/// to the counters; drops, duplicates and delays are not). The sweeps sum
/// this across the grid to prove the plans actually fired.
inline std::uint64_t fault_events(const obs::stats_snapshot& s) {
  return s.core.envelopes_dropped + s.core.envelopes_duplicated +
         s.core.envelopes_delayed;
}

}  // namespace dpg::sim
