// The serving-layer determinism sweep: concurrent solver sessions sharing
// one process (and one envelope pool) must be *bit-identical* to a solo
// session run with the same tuning — across the full fault-plan × seed
// grid. This is what makes the multi-tenant server trustworthy: admission,
// pooling and the shared wire pool may change timing, but never answers.
//
// SSSP distances and BFS depths are fixed points of monotone relaxations,
// so their values are schedule-independent — equality here is exact 64-bit
// equality, never an epsilon (doubles travel as bit patterns).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "algo/sessions.hpp"
#include "graph/generators.hpp"
#include "sim_harness.hpp"
#include "util/simd.hpp"

namespace dpg::sim {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::vertex_id;

constexpr vertex_id kN = 120;
constexpr int kConcurrent = 3;

struct world {
  distributed_graph g;
  pmap::edge_property_map<double> w;

  explicit world(std::uint64_t seed)
      : g(kN, graph::erdos_renyi(kN, 600, substream_seed(seed, 1)),
          distribution::cyclic(kN, 2)),
        w(g, [seed](const graph::edge_handle& e) {
          return graph::edge_weight(e.src, e.dst, substream_seed(seed, 4), 10.0);
        }) {}

  /// The session environment for one grid point; every session built from
  /// it gets the same machine/tuning (hence the same fault decisions) and
  /// shares `pool`.
  algo::session_env env(std::uint64_t seed, const plan_spec& ps,
                        const std::shared_ptr<ampp::wire_pool>& pool) {
    const ampp::transport_config cfg = sim_config(2, seed, ps);
    algo::session_env e;
    e.g = &g;
    e.weights = &w;
    e.machine = cfg.machine();
    e.tuning = cfg.tuning();
    e.pool = pool;
    return e;
  }
};

void run_grid_point(std::uint64_t seed, const plan_spec& ps,
                    std::uint64_t& events) {
  world wd(seed);

  // Solo baselines: one session per algorithm, run alone.
  auto solo_env = wd.env(seed, ps, std::make_shared<ampp::wire_pool>(2));
  auto solo_sssp = algo::make_solver_session(serve::algorithm::sssp, solo_env);
  auto solo_bfs = algo::make_solver_session(serve::algorithm::bfs, solo_env);
  const serve::session_result base_sssp = solo_sssp->run({.source = 0});
  const serve::session_result base_bfs = solo_bfs->run({.source = 0});
  assert_fault_consistency(base_sssp.stats_delta);
  assert_fault_consistency(base_bfs.stats_delta);
  events += fault_events(base_sssp.stats_delta);
  events += fault_events(base_bfs.stats_delta);

  // Concurrent: kConcurrent sessions of each algorithm, all running at
  // once, sharing one envelope pool (the serving-layer configuration).
  auto shared_pool = std::make_shared<ampp::wire_pool>(2);
  auto env = wd.env(seed, ps, shared_pool);
  std::vector<serve::session_result> got_sssp(kConcurrent), got_bfs(kConcurrent);
  {
    std::vector<std::jthread> workers;
    for (int i = 0; i < kConcurrent; ++i) {
      workers.emplace_back([&, i] {
        auto s = algo::make_solver_session(serve::algorithm::sssp, env);
        got_sssp[i] = s->run({.source = 0});
      });
      workers.emplace_back([&, i] {
        auto s = algo::make_solver_session(serve::algorithm::bfs, env);
        got_bfs[i] = s->run({.source = 0});
      });
    }
  }

  for (int i = 0; i < kConcurrent; ++i) {
    EXPECT_EQ(got_sssp[i].values, base_sssp.values) << "sssp session " << i;
    EXPECT_EQ(got_bfs[i].values, base_bfs.values) << "bfs session " << i;
    assert_fault_consistency(got_sssp[i].stats_delta);
    assert_fault_consistency(got_bfs[i].stats_delta);
    events += fault_events(got_sssp[i].stats_delta);
  }
}

TEST(ServingSweep, ConcurrentSessionsBitIdenticalToSoloUnderFaults) {
  std::uint64_t events = 0;
  for (const plan_spec& ps : fault_plans()) {
    for (const std::uint64_t seed : sweep_seeds()) {
      SCOPED_TRACE(repro("serving", ps.name, 2, seed));
      run_grid_point(seed, ps, events);
    }
  }
  // The sweep must actually have exercised the fault layer.
  EXPECT_GT(events, 0u) << "no fault events fired across the whole grid";
}

void run_mixed_tier_point(std::uint64_t seed, const plan_spec& ps,
                          std::uint64_t& events) {
  world wd(seed);
  const std::vector<simd::level> tiers = simd::available_levels();

  // Solo baseline pinned to the scalar tier.
  auto solo_env = wd.env(seed, ps, std::make_shared<ampp::wire_pool>(2));
  solo_env.copts.simd_level = static_cast<int>(simd::level::scalar);
  auto solo_sssp = algo::make_solver_session(serve::algorithm::sssp, solo_env);
  auto solo_bfs = algo::make_solver_session(serve::algorithm::bfs, solo_env);
  const serve::session_result base_sssp = solo_sssp->run({.source = 0});
  const serve::session_result base_bfs = solo_bfs->run({.source = 0});
  events += fault_events(base_sssp.stats_delta);

  // Concurrent sessions, each pinned to a different tier via its own
  // compile_options — they share one wire pool, and their batch scratch
  // must never alias across sessions. Every one must still produce the
  // solo scalar bits.
  auto shared_pool = std::make_shared<ampp::wire_pool>(2);
  const int n_sessions =
      std::max<int>(kConcurrent, static_cast<int>(tiers.size()));
  std::vector<serve::session_result> got_sssp(n_sessions), got_bfs(n_sessions);
  {
    std::vector<std::jthread> workers;
    for (int i = 0; i < n_sessions; ++i) {
      auto env = wd.env(seed, ps, shared_pool);
      env.copts.simd_level = static_cast<int>(tiers[i % tiers.size()]);
      workers.emplace_back([&, env, i] {
        auto s = algo::make_solver_session(serve::algorithm::sssp, env);
        got_sssp[i] = s->run({.source = 0});
      });
      workers.emplace_back([&, env, i] {
        auto s = algo::make_solver_session(serve::algorithm::bfs, env);
        got_bfs[i] = s->run({.source = 0});
      });
    }
  }
  for (int i = 0; i < n_sessions; ++i) {
    const char* tier = simd::name(tiers[i % tiers.size()]);
    EXPECT_EQ(got_sssp[i].values, base_sssp.values)
        << "sssp session " << i << " tier=" << tier;
    EXPECT_EQ(got_bfs[i].values, base_bfs.values)
        << "bfs session " << i << " tier=" << tier;
    assert_fault_consistency(got_sssp[i].stats_delta);
    assert_fault_consistency(got_bfs[i].stats_delta);
    events += fault_events(got_sssp[i].stats_delta);
  }
}

TEST(ServingSweep, MixedSimdTierSessionsBitIdenticalToScalarSolo) {
  // Forced-ISA serving regression: sessions running concurrently at
  // *different* batch-kernel tiers (the per-instantiation pin the serving
  // layer exposes through session_env.copts) must all reproduce the solo
  // scalar solve bit for bit under every fault plan.
  std::uint64_t events = 0;
  for (const plan_spec& ps : fault_plans()) {
    for (const std::uint64_t seed : sweep_seeds()) {
      SCOPED_TRACE(repro("serving_simd", ps.name, 2, seed));
      run_mixed_tier_point(seed, ps, events);
    }
  }
  EXPECT_GT(events, 0u) << "no fault events fired across the whole grid";
}

}  // namespace
}  // namespace dpg::sim
