// k-core decomposition: the pattern+peeling solver against a sequential
// bucket-peeling oracle.
#include "algo/kcore.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.hpp"

namespace dpg::algo {
namespace {

using graph::distributed_graph;
using graph::distribution;

/// Sequential coreness oracle (iterative peeling).
std::vector<std::uint64_t> coreness_oracle(const distributed_graph& g) {
  const vertex_id n = g.num_vertices();
  std::vector<std::uint64_t> deg(n), core(n, 0);
  std::vector<bool> alive(n, true);
  for (vertex_id v = 0; v < n; ++v) deg[v] = g.out_degree(v);
  for (std::uint64_t k = 1;; ++k) {
    bool any_alive = false;
    for (vertex_id v = 0; v < n; ++v) any_alive = any_alive || alive[v];
    if (!any_alive) break;
    bool changed = true;
    while (changed) {
      changed = false;
      for (vertex_id v = 0; v < n; ++v) {
        if (alive[v] && deg[v] < k) {
          alive[v] = false;
          core[v] = k - 1;
          changed = true;
          for (const vertex_id u : g.adjacent(v))
            if (alive[u] && deg[u] > 0) --deg[u];
        }
      }
    }
  }
  return core;
}

TEST(KCore, MatchesOracleOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const vertex_id n = 150;
    const auto edges =
        graph::symmetrize(graph::simplify(graph::erdos_renyi(n, 600, seed)));
    distributed_graph g(n, edges, distribution::cyclic(n, 3));
    const auto oracle = coreness_oracle(g);
    ampp::transport tp(ampp::transport_config{.n_ranks = 3});
    kcore_solver solver(tp, g);
    std::uint64_t degeneracy = 0;
    tp.run([&](ampp::transport_context& ctx) {
      const auto d = solver.run(ctx);
      if (ctx.rank() == 0) degeneracy = d;
    });
    for (vertex_id v = 0; v < n; ++v)
      ASSERT_EQ(solver.coreness()[v], oracle[v]) << "seed=" << seed << " v=" << v;
    EXPECT_EQ(degeneracy, *std::max_element(oracle.begin(), oracle.end()));
  }
}

TEST(KCore, CompleteGraphIsOneCore) {
  const vertex_id n = 10;
  distributed_graph g(n, graph::complete_graph(n), distribution::block(n, 2));
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  kcore_solver solver(tp, g);
  tp.run([&](ampp::transport_context& ctx) { solver.run(ctx); });
  for (vertex_id v = 0; v < n; ++v) EXPECT_EQ(solver.coreness()[v], n - 1);
}

TEST(KCore, PathHasCorenessOne) {
  const vertex_id n = 20;
  const auto edges = graph::symmetrize(graph::path_graph(n));
  distributed_graph g(n, edges, distribution::cyclic(n, 2));
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  kcore_solver solver(tp, g);
  tp.run([&](ampp::transport_context& ctx) { solver.run(ctx); });
  for (vertex_id v = 0; v < n; ++v) EXPECT_EQ(solver.coreness()[v], 1u) << "v=" << v;
}

TEST(KCore, IsolatedVerticesHaveCorenessZero) {
  std::vector<graph::edge> edges = graph::symmetrize(graph::path_graph(3));
  distributed_graph g(6, edges, distribution::block(6, 2));
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  kcore_solver solver(tp, g);
  tp.run([&](ampp::transport_context& ctx) { solver.run(ctx); });
  EXPECT_EQ(solver.coreness()[4], 0u);
  EXPECT_EQ(solver.coreness()[5], 0u);
  EXPECT_EQ(solver.coreness()[1], 1u);
}

TEST(KCore, CliquePlusTailSeparates) {
  // A 5-clique (coreness 4) with a path tail (coreness 1).
  std::vector<graph::edge> edges = graph::complete_graph(5);
  edges.push_back({4, 5});
  edges.push_back({5, 4});
  edges.push_back({5, 6});
  edges.push_back({6, 5});
  distributed_graph g(7, edges, distribution::cyclic(7, 2));
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  kcore_solver solver(tp, g);
  tp.run([&](ampp::transport_context& ctx) { solver.run(ctx); });
  for (vertex_id v = 0; v < 5; ++v) EXPECT_EQ(solver.coreness()[v], 4u);
  EXPECT_EQ(solver.coreness()[5], 1u);
  EXPECT_EQ(solver.coreness()[6], 1u);
}

}  // namespace
}  // namespace dpg::algo
