// Direct unit tests of the sequential baselines on graphs with known
// answers (the baselines must themselves be trustworthy oracles).
#include "algo/baselines.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <numeric>

#include "graph/generators.hpp"

namespace dpg::algo {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;

constexpr double kInf = std::numeric_limits<double>::infinity();

distributed_graph single(vertex_id n, std::vector<graph::edge> edges) {
  return distributed_graph(n, edges, distribution::block(n, 1));
}

TEST(Dijkstra, KnownSmallGraph) {
  //     0 --1-- 1 --1-- 2
  //      \--5-------/
  auto g = single(3, {{0, 1}, {1, 2}, {0, 2}});
  pmap::edge_property_map<double> w(g, [](const edge_handle& e) {
    if (e.src == 0 && e.dst == 2) return 5.0;
    return 1.0;
  });
  const auto d = dijkstra(g, w, 0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 2.0);  // through 1, not the direct 5-edge
}

TEST(Dijkstra, UnreachableIsInfinity) {
  auto g = single(3, {{0, 1}});
  pmap::edge_property_map<double> w(g, 1.0);
  const auto d = dijkstra(g, w, 0);
  EXPECT_EQ(d[2], kInf);
}

TEST(Dijkstra, DirectionMatters) {
  auto g = single(2, {{0, 1}});
  pmap::edge_property_map<double> w(g, 1.0);
  EXPECT_DOUBLE_EQ(dijkstra(g, w, 0)[1], 1.0);
  EXPECT_EQ(dijkstra(g, w, 1)[0], kInf);
}

TEST(BellmanFord, HandlesLongChains) {
  auto g = single(50, graph::path_graph(50));
  pmap::edge_property_map<double> w(g, 2.0);
  const auto d = bellman_ford(g, w, 0);
  for (vertex_id v = 0; v < 50; ++v) EXPECT_DOUBLE_EQ(d[v], 2.0 * v);
}

TEST(BfsLevels, GridDistances) {
  auto g = single(12, graph::grid_graph(3, 4));
  const auto lv = bfs_levels(g, 0);
  EXPECT_EQ(lv[0], 0);
  EXPECT_EQ(lv[3], 3);    // along the first row
  EXPECT_EQ(lv[11], 5);   // opposite corner: 2 down + 3 right
}

TEST(CcUnionFind, LabelsAreComponentMinima) {
  const std::vector<graph::edge> base{{0, 1}, {1, 2}, {4, 5}};
  auto g = single(6, graph::symmetrize(base));
  const auto l = cc_union_find(g);
  EXPECT_EQ(l[0], 0u);
  EXPECT_EQ(l[1], 0u);
  EXPECT_EQ(l[2], 0u);
  EXPECT_EQ(l[3], 3u);
  EXPECT_EQ(l[4], 4u);
  EXPECT_EQ(l[5], 4u);
  std::vector<vertex_id> labels(l.begin(), l.end());
  EXPECT_EQ(count_components(labels), 3u);
}

TEST(CcLabelPropagation, MatchesUnionFindOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto edges = graph::symmetrize(graph::erdos_renyi(100, 80 + seed * 30, seed));
    auto g = single(100, edges);
    ASSERT_EQ(cc_union_find(g), cc_label_propagation(g)) << "seed=" << seed;
  }
}

TEST(PagerankBaseline, UniformOnRegularRing) {
  auto g = single(10, graph::cycle_graph(10));
  const auto r = pagerank(g, 0.85, 50);
  for (vertex_id v = 0; v < 10; ++v) EXPECT_NEAR(r[v], 0.1, 1e-12);
}

TEST(PagerankBaseline, SumsToOneWithSinks) {
  auto g = single(20, graph::star_graph(20));  // leaves are sinks
  const auto r = pagerank(g, 0.85, 25);
  EXPECT_NEAR(std::accumulate(r.begin(), r.end(), 0.0), 1.0, 1e-9);
}

}  // namespace
}  // namespace dpg::algo
