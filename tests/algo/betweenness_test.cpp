// Betweenness centrality: the two-pattern Brandes solver against a
// sequential Brandes oracle, on known topologies and random graphs.
#include "algo/betweenness.hpp"

#include <gtest/gtest.h>

#include <queue>
#include <stack>
#include <vector>

#include "graph/generators.hpp"

namespace dpg::algo {
namespace {

using graph::distributed_graph;
using graph::distribution;

/// Sequential Brandes (unweighted), all sources in `sources`.
std::vector<double> brandes_oracle(const distributed_graph& g,
                                   const std::vector<vertex_id>& sources) {
  const vertex_id n = g.num_vertices();
  std::vector<double> bc(n, 0.0);
  for (const vertex_id s : sources) {
    std::vector<std::vector<vertex_id>> preds(n);
    std::vector<double> sigma(n, 0.0), delta(n, 0.0);
    std::vector<std::int64_t> dist(n, -1);
    std::stack<vertex_id> order;
    std::queue<vertex_id> q;
    sigma[s] = 1.0;
    dist[s] = 0;
    q.push(s);
    while (!q.empty()) {
      const vertex_id v = q.front();
      q.pop();
      order.push(v);
      for (const vertex_id w : g.adjacent(v)) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          q.push(w);
        }
        if (dist[w] == dist[v] + 1) {
          sigma[w] += sigma[v];
          preds[w].push_back(v);
        }
      }
    }
    while (!order.empty()) {
      const vertex_id w = order.top();
      order.pop();
      for (const vertex_id v : preds[w])
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
      if (w != s) bc[w] += delta[w];
    }
  }
  return bc;
}

void expect_bc_matches(const distributed_graph& g, ampp::rank_t ranks,
                       const std::vector<vertex_id>& sources) {
  const auto oracle = brandes_oracle(g, sources);
  ampp::transport tp(ampp::transport_config{.n_ranks = ranks});
  betweenness_solver solver(tp, g);
  tp.run([&](ampp::transport_context& ctx) {
    solver.reset_bc(ctx);
    for (const vertex_id s : sources) solver.accumulate_source(ctx, s);
  });
  for (vertex_id v = 0; v < g.num_vertices(); ++v)
    ASSERT_NEAR(solver.centrality()[v], oracle[v], 1e-9) << "v=" << v;
}

TEST(Betweenness, PathGraphCentresDominate) {
  // On an undirected path, exact betweenness of vertex i (all sources) is
  // 2*i*(n-1-i); check via the oracle and directly.
  const vertex_id n = 9;
  const auto edges = graph::symmetrize(graph::path_graph(n));
  distributed_graph g(n, edges, distribution::cyclic(n, 2));
  std::vector<vertex_id> all(n);
  for (vertex_id v = 0; v < n; ++v) all[v] = v;
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  betweenness_solver solver(tp, g);
  tp.run([&](ampp::transport_context& ctx) {
    solver.reset_bc(ctx);
    for (const vertex_id s : all) solver.accumulate_source(ctx, s);
  });
  for (vertex_id v = 0; v < n; ++v)
    EXPECT_NEAR(solver.centrality()[v], 2.0 * v * (n - 1 - v), 1e-9) << "v=" << v;
}

TEST(Betweenness, StarHubTakesAll) {
  const vertex_id n = 8;
  const auto edges = graph::symmetrize(graph::star_graph(n));
  distributed_graph g(n, edges, distribution::block(n, 2));
  std::vector<vertex_id> all(n);
  for (vertex_id v = 0; v < n; ++v) all[v] = v;
  expect_bc_matches(g, 2, all);
  // Exact: hub sits on every leaf-to-leaf shortest path:
  // (n-1)(n-2) ordered pairs.
  const auto oracle = brandes_oracle(g, all);
  EXPECT_NEAR(oracle[0], (n - 1.0) * (n - 2.0), 1e-9);
}

TEST(Betweenness, MatchesOracleOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    const vertex_id n = 60;
    const auto edges =
        graph::symmetrize(graph::simplify(graph::erdos_renyi(n, 200, seed)));
    distributed_graph g(n, edges, distribution::cyclic(n, 3));
    expect_bc_matches(g, 3, {0, 7, 23});
  }
}

TEST(Betweenness, SigmaCountsShortestPaths) {
  // Diamond: 0->1->3, 0->2->3 (symmetric): two shortest paths to 3.
  std::vector<graph::edge> base{{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  const auto edges = graph::symmetrize(base);
  distributed_graph g(4, edges, distribution::cyclic(4, 2));
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  betweenness_solver solver(tp, g);
  tp.run([&](ampp::transport_context& ctx) {
    solver.reset_bc(ctx);
    solver.accumulate_source(ctx, 0);
  });
  EXPECT_DOUBLE_EQ(solver.sigma()[3], 2.0);
  EXPECT_DOUBLE_EQ(solver.sigma()[1], 1.0);
  EXPECT_EQ(solver.depth()[3], 2u);
}

TEST(Betweenness, DirectedGraphsSupported) {
  // Directed path: only forward paths count.
  const vertex_id n = 6;
  distributed_graph g(n, graph::path_graph(n), distribution::block(n, 2));
  std::vector<vertex_id> all(n);
  for (vertex_id v = 0; v < n; ++v) all[v] = v;
  expect_bc_matches(g, 2, all);
}

}  // namespace
}  // namespace dpg::algo
