// Graph mutation between runs (the paper's framework is for non-morphing
// algorithms — footnote 1; §VI lists mutation as future work). The
// supported idiom is now fully in-place: apply_edges() appends to the
// graph's delta-CSR overlay at the non-morphing boundary, property maps
// grow lazily from their stored init functions, and the *same* solver —
// same transport, same compiled plan — repairs the solution seeded at the
// mutation sites. For edge additions SSSP distances only decrease, so
// replaying relax from the new edges' sources corrects every improvable
// label with far fewer relaxations than a cold solve.
#include <gtest/gtest.h>

#include <vector>

#include "algo/baselines.hpp"
#include "algo/sssp.hpp"
#include "graph/generators.hpp"
#include "strategy/strategies.hpp"

namespace dpg::algo {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;

TEST(GraphMutation, EdgeListRoundTripsThroughRebuild) {
  const vertex_id n = 60;
  const auto edges = graph::erdos_renyi(n, 300, 4);
  distributed_graph g(n, edges, distribution::cyclic(n, 3));
  const auto extracted = graph::edge_list_of(g);
  EXPECT_EQ(extracted.size(), edges.size());
  // Rebuilding from the extracted list yields an identical structure.
  distributed_graph g2(n, extracted, distribution::cyclic(n, 3));
  for (vertex_id v = 0; v < n; ++v) {
    ASSERT_EQ(g.out_degree(v), g2.out_degree(v));
    auto a = g.adjacent(v);
    auto b = g2.adjacent(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << "v=" << v;
  }
}

TEST(IncrementalSssp, InPlaceRepairAfterEdgeAdditions) {
  const vertex_id n = 300;
  const auto base_edges = graph::erdos_renyi(n, 1800, 9);
  const std::uint64_t wseed = 17;
  auto wfn = [wseed](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, wseed, 20.0);
  };

  // ONE graph, ONE weight map, ONE transport, ONE solver for the whole
  // cold-solve → mutate → repair lifecycle: nothing is rebuilt.
  distributed_graph g(n, base_edges, distribution::cyclic(n, 2));
  pmap::edge_property_map<double> w(g, wfn);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  sssp_solver solver(tp, g, w);
  tp.run([&](ampp::transport_context& ctx) { solver.run_delta(ctx, 0, 5.0); });
  const std::uint64_t cold_relaxations = solver.relaxations();

  // Mutate in place: a handful of shortcut edges at the boundary.
  std::vector<graph::edge> extra;
  dpg::xoshiro256ss rng(3);
  for (int i = 0; i < 8; ++i) extra.push_back({rng.below(n), rng.below(n)});
  const std::uint64_t v0 = g.version();
  g.apply_edges(extra);
  EXPECT_EQ(g.version(), v0 + 1);
  EXPECT_EQ(g.num_edges(), base_edges.size() + extra.size());

  // Oracle on an independently built mutated graph.
  std::vector<graph::edge> all(base_edges.begin(), base_edges.end());
  all.insert(all.end(), extra.begin(), extra.end());
  distributed_graph go(n, all, distribution::cyclic(n, 2));
  pmap::edge_property_map<double> wo(go, wfn);
  const auto oracle = dijkstra(go, wo, 0);

  // Warm repair: replay the SAME compiled relax plan from the mutation
  // sites. Distances were never reset; the weight map grows lazily.
  std::vector<vertex_id> sources;
  for (const auto& e : extra) sources.push_back(e.src);
  const std::uint64_t before = solver.relaxations();
  tp.run([&](ampp::transport_context& ctx) { solver.repair(ctx, sources); });
  const std::uint64_t warm_relaxations = solver.relaxations() - before;

  for (vertex_id v = 0; v < n; ++v)
    ASSERT_DOUBLE_EQ(solver.dist()[v], oracle[v]) << "v=" << v;
  // The repair must be much cheaper than the cold solve.
  EXPECT_LT(warm_relaxations, cold_relaxations / 2);
  // The map observed the new topology version lazily.
  EXPECT_EQ(w.observed_version(), g.version());
}

TEST(IncrementalSssp, RepeatedMutateRepairCycles) {
  // Several mutation rounds against one solver: every round must leave the
  // labels equal to a from-scratch oracle on the accumulated edge set.
  const vertex_id n = 150;
  auto edges = graph::erdos_renyi(n, 900, 21);
  auto wfn = [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 31, 15.0);
  };
  distributed_graph g(n, edges, distribution::hashed(n, 3));
  pmap::edge_property_map<double> w(g, wfn);
  ampp::transport tp(ampp::transport_config{.n_ranks = 3});
  sssp_solver solver(tp, g, w);
  tp.run([&](ampp::transport_context& ctx) { solver.run_fixed_point(ctx, 0); });

  dpg::xoshiro256ss rng(77);
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE(round);
    std::vector<graph::edge> extra;
    for (int i = 0; i < 4; ++i) extra.push_back({rng.below(n), rng.below(n)});
    g.apply_edges(extra);
    edges.insert(edges.end(), extra.begin(), extra.end());

    std::vector<vertex_id> sources;
    for (const auto& e : extra) sources.push_back(e.src);
    tp.run([&](ampp::transport_context& ctx) { solver.repair(ctx, sources); });

    distributed_graph go(n, edges, distribution::hashed(n, 3));
    pmap::edge_property_map<double> wo(go, wfn);
    const auto oracle = dijkstra(go, wo, 0);
    for (vertex_id v = 0; v < n; ++v)
      ASSERT_DOUBLE_EQ(solver.dist()[v], oracle[v]) << "v=" << v;
  }
  EXPECT_EQ(g.total_delta_edges(), 12u);
}

TEST(IncrementalSssp, NoOpMutationCostsNothing) {
  const vertex_id n = 80;
  const auto base_edges = graph::erdos_renyi(n, 500, 2);
  auto wfn = [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 5, 10.0);
  };
  distributed_graph g(n, base_edges, distribution::block(n, 2));
  pmap::edge_property_map<double> w(g, wfn);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  sssp_solver solver(tp, g, w);
  tp.run([&](ampp::transport_context& ctx) { solver.run_fixed_point(ctx, 0); });

  // A self-loop can never improve a label: the repair must relax nothing.
  const std::vector<graph::edge> extra{{3, 3}};
  g.apply_edges(extra);
  const std::uint64_t before = solver.relaxations();
  const std::vector<vertex_id> sources{3};
  tp.run([&](ampp::transport_context& ctx) { solver.repair(ctx, sources); });
  EXPECT_EQ(solver.relaxations() - before, 0u);
}

}  // namespace
}  // namespace dpg::algo
