// Graph mutation between runs (the paper's framework is for non-morphing
// algorithms — footnote 1; §VI lists mutation as future work). The
// supported idiom: rebuild the graph with added edges (same distribution,
// so vertex-indexed property values carry over) and *warm-start* the
// pattern from the mutation sites. For edge additions, SSSP distances only
// decrease, so re-running relax seeded at the new edges' sources repairs
// the solution — with far fewer relaxations than a cold solve.
#include <gtest/gtest.h>

#include <vector>

#include "algo/baselines.hpp"
#include "algo/sssp.hpp"
#include "graph/generators.hpp"
#include "strategy/strategies.hpp"

namespace dpg::algo {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;

TEST(GraphMutation, EdgeListRoundTripsThroughRebuild) {
  const vertex_id n = 60;
  const auto edges = graph::erdos_renyi(n, 300, 4);
  distributed_graph g(n, edges, distribution::cyclic(n, 3));
  const auto extracted = graph::edge_list_of(g);
  EXPECT_EQ(extracted.size(), edges.size());
  // Rebuilding from the extracted list yields an identical structure.
  distributed_graph g2(n, extracted, distribution::cyclic(n, 3));
  for (vertex_id v = 0; v < n; ++v) {
    ASSERT_EQ(g.out_degree(v), g2.out_degree(v));
    auto a = g.adjacent(v);
    auto b = g2.adjacent(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << "v=" << v;
  }
}

TEST(GraphMutation, WithAddedEdgesAppends) {
  const vertex_id n = 10;
  distributed_graph g(n, graph::path_graph(n), distribution::block(n, 2));
  const std::vector<graph::edge> extra{{0, 9}, {5, 2}};
  auto g2 = graph::with_added_edges(g, extra);
  EXPECT_EQ(g2.num_edges(), g.num_edges() + 2);
  EXPECT_EQ(g2.out_degree(0), g.out_degree(0) + 1);
  EXPECT_EQ(g2.out_degree(5), g.out_degree(5) + 1);
  EXPECT_EQ(g2.num_vertices(), n);
}

TEST(IncrementalSssp, WarmStartRepairsAfterEdgeAdditions) {
  const vertex_id n = 300;
  const auto base_edges = graph::erdos_renyi(n, 1800, 9);
  const std::uint64_t wseed = 17;
  auto wfn = [wseed](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, wseed, 20.0);
  };

  // Cold solve on the base graph.
  distributed_graph g(n, base_edges, distribution::cyclic(n, 2));
  pmap::edge_property_map<double> w(g, wfn);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  sssp_solver solver(tp, g, w);
  tp.run([&](ampp::transport_context& ctx) { solver.run_delta(ctx, 0, 5.0); });
  const std::uint64_t cold_relaxations = solver.relaxations();

  // Mutate: a handful of shortcut edges.
  std::vector<graph::edge> extra;
  dpg::xoshiro256ss rng(3);
  for (int i = 0; i < 8; ++i) extra.push_back({rng.below(n), rng.below(n)});
  auto g2 = graph::with_added_edges(g, extra);
  pmap::edge_property_map<double> w2(g2, wfn);  // same weight function
  const auto oracle = dijkstra(g2, w2, 0);

  // Warm start: carry the old distances over (vertex ownership unchanged),
  // then run the same relax pattern seeded ONLY at the new edges' sources.
  ampp::transport tp2(ampp::transport_config{.n_ranks = 2});
  sssp_solver solver2(tp2, g2, w2);
  for (ampp::rank_t r = 0; r < 2; ++r) {
    auto src_span = solver.dist().local(r);
    auto dst_span = solver2.dist().local(r);
    ASSERT_EQ(src_span.size(), dst_span.size());
    std::copy(src_span.begin(), src_span.end(), dst_span.begin());
  }
  const std::uint64_t before = solver2.relaxations();
  tp2.run([&](ampp::transport_context& ctx) {
    std::vector<vertex_id> seeds;
    for (const auto& e : extra)
      if (g2.owner(e.src) == ctx.rank()) seeds.push_back(e.src);
    strategy::fixed_point(ctx, solver2.relax(), seeds);
  });
  const std::uint64_t warm_relaxations = solver2.relaxations() - before;

  for (vertex_id v = 0; v < n; ++v)
    ASSERT_DOUBLE_EQ(solver2.dist()[v], oracle[v]) << "v=" << v;
  // The repair must be much cheaper than the cold solve.
  EXPECT_LT(warm_relaxations, cold_relaxations / 2);
}

TEST(IncrementalSssp, NoOpMutationCostsNothing) {
  const vertex_id n = 80;
  const auto base_edges = graph::erdos_renyi(n, 500, 2);
  auto wfn = [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 5, 10.0);
  };
  distributed_graph g(n, base_edges, distribution::block(n, 2));
  pmap::edge_property_map<double> w(g, wfn);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  sssp_solver solver(tp, g, w);
  tp.run([&](ampp::transport_context& ctx) { solver.run_fixed_point(ctx, 0); });

  // "Add" an edge that cannot improve anything: a maximal-weight edge
  // duplicating an existing connection... simplest: an edge from an
  // unreachable vertex region? Use a self-loop: never improves.
  const std::vector<graph::edge> extra{{3, 3}};
  auto g2 = graph::with_added_edges(g, extra);
  pmap::edge_property_map<double> w2(g2, wfn);
  ampp::transport tp2(ampp::transport_config{.n_ranks = 2});
  sssp_solver solver2(tp2, g2, w2);
  for (ampp::rank_t r = 0; r < 2; ++r) {
    auto s = solver.dist().local(r);
    std::copy(s.begin(), s.end(), solver2.dist().local(r).begin());
  }
  const std::uint64_t before = solver2.relaxations();
  tp2.run([&](ampp::transport_context& ctx) {
    std::vector<vertex_id> seeds;
    if (g2.owner(3) == ctx.rank()) seeds.push_back(3);
    strategy::fixed_point(ctx, solver2.relax(), seeds);
  });
  EXPECT_EQ(solver2.relaxations() - before, 0u);
}

}  // namespace
}  // namespace dpg::algo
