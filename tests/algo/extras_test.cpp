// Tests for the extension algorithms: widest path (max-min relax), SSSP
// with predecessor tree (two-modification action), and Luby MIS (two
// patterns + imperative rounds).
#include <gtest/gtest.h>

#include <limits>
#include <queue>
#include <vector>

#include "algo/mis.hpp"
#include "algo/sssp_tree.hpp"
#include "algo/widest_path.hpp"
#include "graph/generators.hpp"

namespace dpg::algo {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// widest path
// ---------------------------------------------------------------------------

/// Oracle: Dijkstra-style max-bottleneck search.
std::vector<double> widest_oracle(const distributed_graph& g,
                                  const pmap::edge_property_map<double>& cap,
                                  vertex_id s) {
  std::vector<double> width(g.num_vertices(), 0.0);
  width[s] = kInf;
  using entry = std::pair<double, vertex_id>;
  std::priority_queue<entry> pq;  // max-heap on width
  pq.emplace(kInf, s);
  while (!pq.empty()) {
    auto [wd, v] = pq.top();
    pq.pop();
    if (wd < width[v]) continue;
    for (const edge_handle e : g.out_edges(v)) {
      const double nw = std::min(wd, cap[e]);
      if (nw > width[e.dst]) {
        width[e.dst] = nw;
        pq.emplace(nw, e.dst);
      }
    }
  }
  return width;
}

TEST(WidestPath, MatchesOracleOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const vertex_id n = 80;
    const auto edges = graph::erdos_renyi(n, 500, seed);
    distributed_graph g(n, edges, distribution::cyclic(n, 3));
    pmap::edge_property_map<double> cap(g, [seed](const edge_handle& e) {
      return graph::edge_weight(e.src, e.dst, seed * 7, 50.0);
    });
    const auto oracle = widest_oracle(g, cap, 0);
    ampp::transport tp(ampp::transport_config{.n_ranks = 3});
    widest_path_solver solver(tp, g, cap);
    tp.run([&](ampp::transport_context& ctx) { solver.run(ctx, 0); });
    for (vertex_id v = 0; v < n; ++v)
      ASSERT_DOUBLE_EQ(solver.width()[v], oracle[v]) << "seed=" << seed << " v=" << v;
  }
}

TEST(WidestPath, UsesAtomicMaxUpdatePath) {
  distributed_graph g(4, graph::path_graph(4), distribution::block(4, 2));
  pmap::edge_property_map<double> cap(g, 1.0);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  widest_path_solver solver(tp, g, cap);
  EXPECT_TRUE(solver.relax().plan().atomic_path);
  EXPECT_EQ(solver.relax().plan().messages_per_application(), 1);
}

TEST(WidestPath, BottleneckOnKnownGraph) {
  // 0 -10-> 1 -2-> 3 ;  0 -4-> 2 -4-> 3 : best bottleneck to 3 is 4.
  std::vector<graph::edge> edges{{0, 1}, {1, 3}, {0, 2}, {2, 3}};
  distributed_graph g(4, edges, distribution::cyclic(4, 2));
  pmap::edge_property_map<double> cap(g, [](const edge_handle& e) -> double {
    if (e.src == 0 && e.dst == 1) return 10;
    if (e.src == 1 && e.dst == 3) return 2;
    return 4;
  });
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  widest_path_solver solver(tp, g, cap);
  tp.run([&](ampp::transport_context& ctx) { solver.run(ctx, 0); });
  EXPECT_DOUBLE_EQ(solver.width()[3], 4.0);
  EXPECT_DOUBLE_EQ(solver.width()[1], 10.0);
}

// ---------------------------------------------------------------------------
// SSSP with predecessor tree
// ---------------------------------------------------------------------------

TEST(SsspTree, DistancesMatchAndTreeIsConsistent) {
  const vertex_id n = 100;
  const auto edges = graph::erdos_renyi(n, 700, 19);
  distributed_graph g(n, edges, distribution::cyclic(n, 4));
  pmap::edge_property_map<double> weight(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 3, 9.0);
  });
  ampp::transport tp(ampp::transport_config{.n_ranks = 4});
  sssp_tree_solver solver(tp, g, weight);
  EXPECT_FALSE(solver.relax().plan().atomic_path);  // two mods => lock map
  tp.run([&](ampp::transport_context& ctx) { solver.run(ctx, 0); });

  // The (dist, parent) pair must be consistent: dist[v] equals
  // dist[parent[v]] + weight(parent[v] -> v) for some edge with exactly
  // that weight.
  for (vertex_id v = 1; v < n; ++v) {
    if (solver.dist()[v] == sssp_tree_solver::infinity) {
      EXPECT_EQ(solver.parent()[v], graph::invalid_vertex);
      continue;
    }
    const vertex_id p = solver.parent()[v];
    ASSERT_NE(p, graph::invalid_vertex) << "v=" << v;
    bool found_edge = false;
    for (const edge_handle e : g.out_edges(p))
      if (e.dst == v && solver.dist()[p] + weight[e] == solver.dist()[v])
        found_edge = true;
    EXPECT_TRUE(found_edge) << "no tree edge justifies dist[" << v << "]";
  }
}

TEST(SsspTree, PathReconstructionWalksTheTree) {
  const vertex_id n = 30;
  distributed_graph g(n, graph::path_graph(n), distribution::cyclic(n, 2));
  pmap::edge_property_map<double> weight(g, 1.0);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  sssp_tree_solver solver(tp, g, weight);
  tp.run([&](ampp::transport_context& ctx) { solver.run(ctx, 0); });
  const auto path = solver.path_to(n - 1, 0);
  ASSERT_EQ(path.size(), n);
  for (vertex_id i = 0; i < n; ++i) EXPECT_EQ(path[i], i);
  EXPECT_TRUE(solver.path_to(5, 0).size() == 6);
}

TEST(SsspTree, UnreachableGivesEmptyPath) {
  std::vector<graph::edge> edges{{0, 1}};
  distributed_graph g(3, edges, distribution::block(3, 1));
  pmap::edge_property_map<double> weight(g, 1.0);
  ampp::transport tp(ampp::transport_config{.n_ranks = 1});
  sssp_tree_solver solver(tp, g, weight);
  tp.run([&](ampp::transport_context& ctx) { solver.run(ctx, 0); });
  EXPECT_TRUE(solver.path_to(2, 0).empty());
}

// ---------------------------------------------------------------------------
// MIS
// ---------------------------------------------------------------------------

void expect_valid_mis(const distributed_graph& g, mis_solver& mis) {
  const vertex_id n = g.num_vertices();
  for (vertex_id v = 0; v < n; ++v) {
    if (mis.in_set(v)) {
      for (const vertex_id u : g.adjacent(v)) {
        if (u != v) {
          ASSERT_FALSE(mis.in_set(u)) << "adjacent members " << v << "," << u;
        }
      }
    } else {
      bool has_in_neighbour = false;
      for (const vertex_id u : g.adjacent(v))
        if (u != v && mis.in_set(u)) has_in_neighbour = true;
      ASSERT_TRUE(has_in_neighbour) << "vertex " << v << " is not dominated";
    }
  }
}

TEST(Mis, ValidOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const vertex_id n = 120;
    const auto edges = graph::symmetrize(
        graph::simplify(graph::erdos_renyi(n, 400, seed)));
    distributed_graph g(n, edges, distribution::cyclic(n, 3));
    ampp::transport tp(ampp::transport_config{.n_ranks = 3});
    mis_solver mis(tp, g);
    int rounds = 0;
    tp.run([&](ampp::transport_context& ctx) {
      const int r = mis.run(ctx, seed);
      if (ctx.rank() == 0) rounds = r;
    });
    EXPECT_GT(rounds, 0);
    EXPECT_LT(rounds, 64);  // Luby converges in O(log n) rounds w.h.p.
    expect_valid_mis(g, mis);
  }
}

TEST(Mis, EdgelessGraphSelectsEveryone) {
  distributed_graph g(10, {}, distribution::block(10, 2));
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  mis_solver mis(tp, g);
  tp.run([&](ampp::transport_context& ctx) { mis.run(ctx); });
  for (vertex_id v = 0; v < 10; ++v) EXPECT_TRUE(mis.in_set(v));
}

TEST(Mis, CompleteGraphSelectsExactlyOne) {
  const vertex_id n = 12;
  distributed_graph g(n, graph::complete_graph(n), distribution::cyclic(n, 3));
  ampp::transport tp(ampp::transport_config{.n_ranks = 3});
  mis_solver mis(tp, g);
  tp.run([&](ampp::transport_context& ctx) { mis.run(ctx); });
  int members = 0;
  for (vertex_id v = 0; v < n; ++v) members += mis.in_set(v) ? 1 : 0;
  EXPECT_EQ(members, 1);
}

TEST(Mis, PathGraphAlternatesRoughly) {
  const vertex_id n = 40;
  const auto edges = graph::symmetrize(graph::path_graph(n));
  distributed_graph g(n, edges, distribution::block(n, 2));
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  mis_solver mis(tp, g);
  tp.run([&](ampp::transport_context& ctx) { mis.run(ctx); });
  expect_valid_mis(g, mis);
  int members = 0;
  for (vertex_id v = 0; v < n; ++v) members += mis.in_set(v) ? 1 : 0;
  // An MIS of a path of n vertices has between ceil(n/3) and ceil(n/2).
  EXPECT_GE(members, static_cast<int>(n) / 3);
  EXPECT_LE(members, (static_cast<int>(n) + 1) / 2);
}

}  // namespace
}  // namespace dpg::algo
