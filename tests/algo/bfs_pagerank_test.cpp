// BFS and PageRank built from patterns, validated against the sequential
// baselines.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algo/baselines.hpp"
#include "algo/bfs.hpp"
#include "algo/pagerank.hpp"
#include "graph/generators.hpp"

namespace dpg::algo {
namespace {

using graph::distributed_graph;
using graph::distribution;

TEST(Bfs, FixedPointMatchesSequentialLevels) {
  const vertex_id n = 200;
  const auto edges = graph::erdos_renyi(n, 900, 15);
  distributed_graph g(n, edges, distribution::cyclic(n, 3));
  const auto oracle = bfs_levels(g, 0);
  ampp::transport tp(ampp::transport_config{.n_ranks = 3});
  bfs_solver bfs(tp, g);
  tp.run([&](ampp::transport_context& ctx) { bfs.run_fixed_point(ctx, 0); });
  for (vertex_id v = 0; v < n; ++v) {
    const auto got = bfs.depth()[v];
    if (oracle[v] < 0)
      EXPECT_EQ(got, bfs.unreachable_depth()) << "v=" << v;
    else
      EXPECT_EQ(got, static_cast<std::uint64_t>(oracle[v])) << "v=" << v;
  }
}

TEST(Bfs, LevelSyncMatchesFixedPoint) {
  const vertex_id n = 150;
  const auto edges = graph::erdos_renyi(n, 700, 25);
  distributed_graph g(n, edges, distribution::block(n, 2));
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  bfs_solver bfs(tp, g);
  tp.run([&](ampp::transport_context& ctx) { bfs.run_fixed_point(ctx, 3); });
  std::vector<std::uint64_t> fixed(n);
  for (vertex_id v = 0; v < n; ++v) fixed[v] = bfs.depth()[v];
  tp.run([&](ampp::transport_context& ctx) { bfs.run_level_sync(ctx, 3); });
  for (vertex_id v = 0; v < n; ++v) ASSERT_EQ(bfs.depth()[v], fixed[v]) << "v=" << v;
}

TEST(Bfs, DisconnectedVerticesKeepSentinelDepth) {
  std::vector<graph::edge> edges{{0, 1}, {1, 2}};
  distributed_graph g(5, edges, distribution::cyclic(5, 2));
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  bfs_solver bfs(tp, g);
  tp.run([&](ampp::transport_context& ctx) { bfs.run_fixed_point(ctx, 0); });
  EXPECT_EQ(bfs.depth()[2], 2u);
  EXPECT_EQ(bfs.depth()[3], bfs.unreachable_depth());
  EXPECT_EQ(bfs.depth()[4], bfs.unreachable_depth());
}

TEST(PageRank, MatchesSequentialPowerIteration) {
  const vertex_id n = 120;
  const auto edges = graph::erdos_renyi(n, 700, 5);
  distributed_graph g(n, edges, distribution::cyclic(n, 3));
  const auto oracle = pagerank(g, 0.85, 20);
  ampp::transport tp(ampp::transport_config{.n_ranks = 3});
  pagerank_solver pr(tp, g);
  tp.run([&](ampp::transport_context& ctx) { pr.run(ctx, 0.85, 20); });
  for (vertex_id v = 0; v < n; ++v)
    ASSERT_NEAR(pr.ranks()[v], oracle[v], 1e-12) << "v=" << v;
}

TEST(PageRank, MassIsConserved) {
  const vertex_id n = 90;
  // Include sinks (star edges point outward only: leaves are sinks).
  const auto edges = graph::star_graph(n);
  distributed_graph g(n, edges, distribution::block(n, 2));
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  pagerank_solver pr(tp, g);
  tp.run([&](ampp::transport_context& ctx) { pr.run(ctx, 0.85, 15); });
  double total = 0;
  for (vertex_id v = 0; v < n; ++v) total += pr.ranks()[v];
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PageRank, HubCollectsMoreRankThanLeaves) {
  // Symmetric star: the hub must dominate.
  const vertex_id n = 50;
  const auto edges = graph::symmetrize(graph::star_graph(n));
  distributed_graph g(n, edges, distribution::cyclic(n, 2));
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  pagerank_solver pr(tp, g);
  tp.run([&](ampp::transport_context& ctx) { pr.run(ctx, 0.85, 30); });
  for (vertex_id v = 1; v < n; ++v) EXPECT_GT(pr.ranks()[0], pr.ranks()[v]);
}

}  // namespace
}  // namespace dpg::algo
