// Connected components (the paper's Fig. 3 parallel search) against the
// union-find oracle: partitions must match exactly on every graph family,
// distribution, and rank count; plus diagnostics (conflicts, jump rounds)
// and the epoch_flush ablation.
#include "algo/cc.hpp"

#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "algo/baselines.hpp"
#include "graph/generators.hpp"

namespace dpg::algo {
namespace {

using graph::distributed_graph;
using graph::distribution;

/// Checks that two labellings induce the same partition of [0, n).
void expect_same_partition(const std::vector<vertex_id>& oracle,
                           const pmap::vertex_property_map<vertex_id>& got,
                           vertex_id n) {
  std::map<vertex_id, vertex_id> fwd, bwd;
  for (vertex_id v = 0; v < n; ++v) {
    const vertex_id a = oracle[v];
    const vertex_id b = got[v];
    auto [fit, finserted] = fwd.emplace(a, b);
    ASSERT_EQ(fit->second, b) << "oracle class " << a << " split at v=" << v;
    auto [bit, binserted] = bwd.emplace(b, a);
    ASSERT_EQ(bit->second, a) << "result class " << b << " merges oracle classes at v=" << v;
  }
}

struct cc_case {
  const char* name;
  vertex_id n;
  std::vector<graph::edge> edges;  // already symmetric
};

std::vector<cc_case> cc_cases() {
  std::vector<cc_case> cases;
  // Several disconnected paths.
  {
    std::vector<graph::edge> e;
    for (vertex_id c = 0; c < 5; ++c)
      for (vertex_id v = 0; v + 1 < 10; ++v)
        e.push_back({c * 10 + v, c * 10 + v + 1});
    cases.push_back({"five_paths", 50, graph::symmetrize(e)});
  }
  // Random graph: a mix of one giant and several small components.
  cases.push_back({"er", 200, graph::symmetrize(graph::erdos_renyi(200, 220, 5))});
  // Very sparse: mostly isolated vertices.
  cases.push_back({"sparse", 150, graph::symmetrize(graph::erdos_renyi(150, 30, 6))});
  // Power-law.
  {
    graph::rmat_params p;
    p.scale = 7;
    p.edge_factor = 4;
    cases.push_back({"rmat", 1u << 7, graph::symmetrize(graph::rmat(p, 8))});
  }
  // Fully connected ring.
  cases.push_back({"ring", 64, graph::symmetrize(graph::cycle_graph(64))});
  // No edges at all.
  cases.push_back({"isolated", 40, {}});
  return cases;
}

using params = std::tuple<int, int /*dist*/, ampp::rank_t, bool /*flush*/>;

class CcEndToEnd : public ::testing::TestWithParam<params> {};

TEST_P(CcEndToEnd, PartitionMatchesUnionFind) {
  auto [case_idx, dist_kind, ranks, flush] = GetParam();
  const auto gc = cc_cases()[case_idx];
  distribution d = dist_kind == 0 ? distribution::block(gc.n, ranks)
                   : dist_kind == 1
                       ? distribution::cyclic(gc.n, ranks)
                       : distribution::hashed(gc.n, ranks, 11);
  distributed_graph g(gc.n, gc.edges, d);
  const auto oracle = cc_union_find(g);

  cc_solver cc(g, ampp::transport_config{.n_ranks = ranks});
  cc.solve(flush);
  expect_same_partition(oracle, cc.components(), gc.n);
}

std::string param_name(const ::testing::TestParamInfo<params>& info) {
  auto [c, d, r, f] = info.param;
  static const char* dists[] = {"block", "cyclic", "hashed"};
  return std::string(cc_cases()[c].name) + "_" + dists[d] + "_r" + std::to_string(r) +
         (f ? "_flush" : "_noflush");
}

INSTANTIATE_TEST_SUITE_P(Sweep, CcEndToEnd,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(1),
                                            ::testing::Values<ampp::rank_t>(1, 4),
                                            ::testing::Bool()),
                         param_name);

INSTANTIATE_TEST_SUITE_P(Distributions, CcEndToEnd,
                         ::testing::Combine(::testing::Values(1),
                                            ::testing::Values(0, 2),
                                            ::testing::Values<ampp::rank_t>(3),
                                            ::testing::Values(true)),
                         param_name);

TEST(Cc, ComponentCountsMatchOracle) {
  const auto edges = graph::symmetrize(graph::erdos_renyi(300, 250, 42));
  distributed_graph g(300, edges, distribution::cyclic(300, 4));
  const auto oracle = cc_union_find(g);
  cc_solver cc(g, ampp::transport_config{.n_ranks = 4});
  cc.solve();
  std::vector<vertex_id> got(300);
  for (vertex_id v = 0; v < 300; ++v) got[v] = cc.components()[v];
  EXPECT_EQ(count_components(got), count_components(oracle));
}

TEST(Cc, IsolatedVerticesAreTheirOwnComponents) {
  distributed_graph g(10, {}, distribution::block(10, 2));
  cc_solver cc(g, ampp::transport_config{.n_ranks = 2});
  cc.solve();
  for (vertex_id v = 0; v < 10; ++v) EXPECT_EQ(cc.components()[v], v);
  EXPECT_EQ(cc.conflict_pairs(), 0u);
  EXPECT_EQ(cc.searches_seeded(), 10u);
}

TEST(Cc, SingleRankSeedsFewSearchesWithFlush) {
  // With one rank and flushing, each component is fully explored before
  // the next seed: the number of searches equals the number of components.
  const auto edges = graph::symmetrize(graph::erdos_renyi(120, 150, 9));
  distributed_graph g(120, edges, distribution::block(120, 1));
  const auto oracle = cc_union_find(g);
  cc_solver cc(g, ampp::transport_config{.n_ranks = 1});
  cc.solve(true);
  EXPECT_EQ(cc.searches_seeded(), count_components(oracle));
  EXPECT_EQ(cc.conflict_pairs(), 0u);
}

TEST(Cc, BaselinesAgree) {
  const auto edges = graph::symmetrize(graph::erdos_renyi(150, 170, 31));
  distributed_graph g(150, edges, distribution::block(150, 1));
  const auto a = cc_union_find(g);
  const auto b = cc_label_propagation(g);
  for (vertex_id v = 0; v < 150; ++v) ASSERT_EQ(a[v], b[v]);
}

TEST(Cc, SolveIsRepeatable) {
  const auto edges = graph::symmetrize(graph::erdos_renyi(80, 100, 2));
  distributed_graph g(80, edges, distribution::cyclic(80, 2));
  const auto oracle = cc_union_find(g);
  cc_solver cc(g, ampp::transport_config{.n_ranks = 2});
  cc.solve();
  expect_same_partition(oracle, cc.components(), 80);
  cc.solve();  // must fully reset internal state
  expect_same_partition(oracle, cc.components(), 80);
}

}  // namespace
}  // namespace dpg::algo
