// Direction-optimizing BFS: correctness against the sequential oracle,
// agreement with plain push BFS, and verification that the heuristic
// actually switches direction on frontier-heavy graphs.
#include "algo/bfs_dir_opt.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "algo/baselines.hpp"
#include "algo/bfs.hpp"
#include "graph/generators.hpp"

namespace dpg::algo {
namespace {

using graph::distributed_graph;
using graph::distribution;

TEST(BfsDirOpt, MatchesOracleOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const vertex_id n = 300;
    const auto edges = graph::symmetrize(graph::erdos_renyi(n, 1200, seed));
    distributed_graph g(n, edges, distribution::cyclic(n, 3), /*bidirectional=*/true);
    const auto oracle = bfs_levels(g, 0);
    ampp::transport tp(ampp::transport_config{.n_ranks = 3});
    bfs_dir_opt_solver bfs(tp, g);
    tp.run([&](ampp::transport_context& ctx) { bfs.run(ctx, 0); });
    for (vertex_id v = 0; v < n; ++v) {
      if (oracle[v] < 0)
        ASSERT_EQ(bfs.depth()[v], bfs.unreachable_depth()) << "seed=" << seed;
      else
        ASSERT_EQ(bfs.depth()[v], static_cast<std::uint64_t>(oracle[v]))
            << "seed=" << seed << " v=" << v;
    }
  }
}

TEST(BfsDirOpt, SwitchesToPullOnDenseFrontiers) {
  // A symmetric R-MAT with edge factor 16: the second or third frontier
  // covers most of the giant component, which must trigger pull mode.
  graph::rmat_params p;
  p.scale = 10;
  p.edge_factor = 16;
  const vertex_id n = 1u << p.scale;
  const auto edges = graph::symmetrize(graph::rmat(p, 5));
  distributed_graph g(n, edges, distribution::cyclic(n, 2), true);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  bfs_dir_opt_solver bfs(tp, g);
  // Source: a hub (max out-degree vertex) so the frontier explodes.
  vertex_id hub = 0;
  for (vertex_id v = 0; v < n; ++v)
    if (g.out_degree(v) > g.out_degree(hub)) hub = v;
  tp.run([&](ampp::transport_context& ctx) { bfs.run(ctx, hub); });
  const auto& modes = bfs.modes();
  ASSERT_FALSE(modes.empty());
  EXPECT_EQ(modes.front(), 'p');  // first level: tiny frontier => push
  EXPECT_NE(std::find(modes.begin(), modes.end(), 'P'), modes.end())
      << "pull mode never engaged";
  // Verify against plain BFS.
  const auto oracle = bfs_levels(g, hub);
  for (vertex_id v = 0; v < n; ++v) {
    const auto want = oracle[v] < 0 ? bfs.unreachable_depth()
                                    : static_cast<std::uint64_t>(oracle[v]);
    ASSERT_EQ(bfs.depth()[v], want) << "v=" << v;
  }
}

TEST(BfsDirOpt, AlphaZeroForcesPushOnly) {
  const vertex_id n = 100;
  const auto edges = graph::symmetrize(graph::erdos_renyi(n, 400, 7));
  distributed_graph g(n, edges, distribution::block(n, 2), true);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  bfs_dir_opt_solver bfs(tp, g);
  tp.run([&](ampp::transport_context& ctx) { bfs.run(ctx, 0, /*alpha=*/0.0); });
  for (const char m : bfs.modes()) EXPECT_EQ(m, 'p');
  const auto oracle = bfs_levels(g, 0);
  for (vertex_id v = 0; v < n; ++v) {
    if (oracle[v] >= 0) {
      ASSERT_EQ(bfs.depth()[v], static_cast<std::uint64_t>(oracle[v]));
    }
  }
}

TEST(BfsDirOpt, HugeAlphaForcesPullHeavy) {
  const vertex_id n = 100;
  const auto edges = graph::symmetrize(graph::erdos_renyi(n, 400, 7));
  distributed_graph g(n, edges, distribution::block(n, 2), true);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  bfs_dir_opt_solver bfs(tp, g);
  tp.run([&](ampp::transport_context& ctx) { bfs.run(ctx, 0, /*alpha=*/1e18); });
  for (const char m : bfs.modes()) EXPECT_EQ(m, 'P');
  const auto oracle = bfs_levels(g, 0);
  for (vertex_id v = 0; v < n; ++v) {
    if (oracle[v] >= 0) {
      ASSERT_EQ(bfs.depth()[v], static_cast<std::uint64_t>(oracle[v]));
    }
  }
}

TEST(BfsDirOpt, RequiresBidirectionalStorage) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto edges = graph::path_graph(4);
  distributed_graph g(4, edges, distribution::block(4, 1), /*bidirectional=*/false);
  ampp::transport tp(ampp::transport_config{.n_ranks = 1});
  EXPECT_DEATH({ bfs_dir_opt_solver bfs(tp, g); }, "bidirectional");
}

}  // namespace
}  // namespace dpg::algo
