// SSSP end-to-end: the one declarative relax action under three schedules
// (fixed point, coordinated Δ-stepping, uncoordinated Δ-stepping) against
// the Dijkstra and Bellman-Ford baselines, across graph families,
// distributions, and rank counts.
#include "algo/sssp.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "algo/baselines.hpp"
#include "graph/generators.hpp"

namespace dpg::algo {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;

distribution make_dist(int kind, vertex_id n, ampp::rank_t ranks) {
  switch (kind) {
    case 0: return distribution::block(n, ranks);
    case 1: return distribution::cyclic(n, ranks);
    default: return distribution::hashed(n, ranks, 3);
  }
}

struct graph_case {
  const char* name;
  vertex_id n;
  std::vector<graph::edge> edges;
};

std::vector<graph_case> graph_cases() {
  std::vector<graph_case> cases;
  cases.push_back({"er_sparse", 150, graph::erdos_renyi(150, 600, 1)});
  cases.push_back({"er_dense", 80, graph::erdos_renyi(80, 2000, 2)});
  {
    graph::rmat_params p;
    p.scale = 7;
    p.edge_factor = 8;
    cases.push_back({"rmat", 1u << 7, graph::rmat(p, 3)});
  }
  cases.push_back({"path", 100, graph::path_graph(100)});
  cases.push_back({"grid", 64, graph::grid_graph(8, 8)});
  cases.push_back({"star", 60, graph::star_graph(60)});
  return cases;
}

using params = std::tuple<int /*graph case*/, int /*dist kind*/, ampp::rank_t, int /*mode*/>;

class SsspEndToEnd : public ::testing::TestWithParam<params> {};

TEST_P(SsspEndToEnd, MatchesDijkstra) {
  auto [case_idx, dist_kind, ranks, mode] = GetParam();
  const auto gc = graph_cases()[case_idx];
  distributed_graph g(gc.n, gc.edges, make_dist(dist_kind, gc.n, ranks));
  pmap::edge_property_map<double> weight(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 13, 8.0);
  });

  const auto oracle = dijkstra(g, weight, 0);

  ampp::transport tp(ampp::transport_config{.n_ranks = ranks});
  sssp_solver solver(tp, g, weight);
  tp.run([&](ampp::transport_context& ctx) {
    switch (mode) {
      case 0: solver.run_fixed_point(ctx, 0); break;
      case 1: solver.run_delta(ctx, 0, 4.0); break;
      default: solver.run_delta_uncoordinated(ctx, 0, 4.0); break;
    }
  });
  for (vertex_id v = 0; v < gc.n; ++v)
    ASSERT_DOUBLE_EQ(solver.dist()[v], oracle[v]) << gc.name << " v=" << v;
}

std::string param_name(const ::testing::TestParamInfo<params>& info) {
  auto [c, d, r, m] = info.param;
  static const char* dists[] = {"block", "cyclic", "hashed"};
  static const char* modes[] = {"fixed", "delta", "deltaunc"};
  return std::string(graph_cases()[c].name) + "_" + dists[d] + "_r" + std::to_string(r) +
         "_" + modes[m];
}

INSTANTIATE_TEST_SUITE_P(Sweep, SsspEndToEnd,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(1),
                                            ::testing::Values<ampp::rank_t>(1, 3),
                                            ::testing::Values(0, 1, 2)),
                         param_name);

INSTANTIATE_TEST_SUITE_P(Distributions, SsspEndToEnd,
                         ::testing::Combine(::testing::Values(0),
                                            ::testing::Values(0, 2),
                                            ::testing::Values<ampp::rank_t>(4),
                                            ::testing::Values(0, 1)),
                         param_name);

TEST(Sssp, BaselinesAgreeWithEachOther) {
  const vertex_id n = 90;
  const auto edges = graph::erdos_renyi(n, 700, 8);
  distributed_graph g(n, edges, distribution::block(n, 1));
  pmap::edge_property_map<double> weight(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 4, 5.0);
  });
  EXPECT_EQ(dijkstra(g, weight, 0), bellman_ford(g, weight, 0));
}

TEST(Sssp, DeltaSteppingPerformsFewerRelaxationsThanChaoticOnSkewedWeights) {
  // The label-correcting order matters (Fig. 1 discussion): bucketed
  // processing revisits far fewer vertices than chaotic fixed point.
  graph::rmat_params p;
  p.scale = 9;
  p.edge_factor = 8;
  const auto edges = graph::rmat(p, 77);
  const vertex_id n = 1u << p.scale;
  distributed_graph g(n, edges, distribution::cyclic(n, 2));
  pmap::edge_property_map<double> weight(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 31, 100.0);
  });
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  sssp_solver solver(tp, g, weight);

  tp.run([&](ampp::transport_context& ctx) { solver.run_fixed_point(ctx, 0); });
  const std::uint64_t chaotic = solver.relaxations();
  tp.run([&](ampp::transport_context& ctx) { solver.run_delta(ctx, 0, 20.0); });
  const std::uint64_t delta = solver.relaxations() - chaotic;
  EXPECT_LT(delta, chaotic);
}

TEST(Sssp, RepeatedSolvesFromDifferentSourcesAreIndependent) {
  const vertex_id n = 70;
  const auto edges = graph::erdos_renyi(n, 500, 12);
  distributed_graph g(n, edges, distribution::cyclic(n, 2));
  pmap::edge_property_map<double> weight(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 9, 4.0);
  });
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  sssp_solver solver(tp, g, weight);
  for (vertex_id s : {vertex_id{0}, vertex_id{17}, vertex_id{42}}) {
    const auto oracle = dijkstra(g, weight, s);
    tp.run([&](ampp::transport_context& ctx) { solver.run_delta(ctx, s, 2.0); });
    for (vertex_id v = 0; v < n; ++v) ASSERT_DOUBLE_EQ(solver.dist()[v], oracle[v]);
  }
}

}  // namespace
}  // namespace dpg::algo
