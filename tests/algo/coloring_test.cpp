// Jones–Plassmann coloring: propriety, bounds, and special topologies.
#include "algo/coloring.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"

namespace dpg::algo {
namespace {

using graph::distributed_graph;
using graph::distribution;

void expect_proper(const distributed_graph& g, coloring_solver& cs) {
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    ASSERT_NE(cs.colors()[v], coloring_solver::uncolored) << "v=" << v;
    for (const vertex_id u : g.adjacent(v)) {
      if (u != v) {
        ASSERT_NE(cs.colors()[v], cs.colors()[u]) << "edge " << v << "-" << u;
      }
    }
  }
}

TEST(Coloring, ProperOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const vertex_id n = 150;
    const auto edges =
        graph::symmetrize(graph::simplify(graph::erdos_renyi(n, 500, seed)));
    distributed_graph g(n, edges, distribution::cyclic(n, 3));
    ampp::transport tp(ampp::transport_config{.n_ranks = 3});
    coloring_solver cs(tp, g);
    std::uint64_t colors = 0;
    tp.run([&](ampp::transport_context& ctx) {
      const auto c = cs.run(ctx, seed);
      if (ctx.rank() == 0) colors = c;
    });
    expect_proper(g, cs);
    EXPECT_GT(colors, 1u);
    EXPECT_LT(colors, 64u);  // JP uses few rounds on sparse graphs
  }
}

TEST(Coloring, EdgelessGraphUsesOneColor) {
  distributed_graph g(12, {}, distribution::block(12, 2));
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  coloring_solver cs(tp, g);
  std::uint64_t colors = 0;
  tp.run([&](ampp::transport_context& ctx) {
    const auto c = cs.run(ctx);
    if (ctx.rank() == 0) colors = c;
  });
  EXPECT_EQ(colors, 1u);
  for (vertex_id v = 0; v < 12; ++v) EXPECT_EQ(cs.colors()[v], 0u);
}

TEST(Coloring, CompleteGraphNeedsNColors) {
  const vertex_id n = 8;
  distributed_graph g(n, graph::complete_graph(n), distribution::cyclic(n, 2));
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  coloring_solver cs(tp, g);
  tp.run([&](ampp::transport_context& ctx) { cs.run(ctx); });
  expect_proper(g, cs);
  std::set<std::uint64_t> used;
  for (vertex_id v = 0; v < n; ++v) used.insert(cs.colors()[v]);
  EXPECT_EQ(used.size(), n);  // K_n is n-chromatic
}

TEST(Coloring, PathIsCheap) {
  const vertex_id n = 64;
  const auto edges = graph::symmetrize(graph::path_graph(n));
  distributed_graph g(n, edges, distribution::block(n, 2));
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  coloring_solver cs(tp, g);
  std::uint64_t colors = 0;
  tp.run([&](ampp::transport_context& ctx) {
    const auto c = cs.run(ctx);
    if (ctx.rank() == 0) colors = c;
  });
  expect_proper(g, cs);
  EXPECT_LE(colors, 16u);  // chromatic number 2; JP uses a few rounds
}

TEST(Coloring, DeterministicForFixedSeed) {
  const vertex_id n = 60;
  const auto edges = graph::symmetrize(graph::erdos_renyi(n, 200, 4));
  distributed_graph g(n, edges, distribution::block(n, 1));
  auto run_once = [&](std::uint64_t seed) {
    ampp::transport tp(ampp::transport_config{.n_ranks = 1});
    coloring_solver cs(tp, g);
    tp.run([&](ampp::transport_context& ctx) { cs.run(ctx, seed); });
    std::vector<std::uint64_t> out(n);
    for (vertex_id v = 0; v < n; ++v) out[v] = cs.colors()[v];
    return out;
  };
  EXPECT_EQ(run_once(7), run_once(7));
}

}  // namespace
}  // namespace dpg::algo
