// Edge property maps: primary storage at owner(src), mirror reads at
// owner(dst) for in-edge handles, functional fill consistency.
#include "pmap/edge_map.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <span>
#include <string>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace dpg::pmap {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;
using graph::vertex_id;

TEST(EdgeMap, UniformInit) {
  const auto edges = graph::cycle_graph(6);
  distributed_graph g(6, edges, distribution::cyclic(6, 2));
  edge_property_map<double> w(g, 3.5);
  for (vertex_id v = 0; v < 6; ++v)
    for (const edge_handle e : g.out_edges(v)) EXPECT_DOUBLE_EQ(w[e], 3.5);
}

TEST(EdgeMap, FunctionalFillUsesEdgeEndpoints) {
  const auto edges = graph::complete_graph(5);
  distributed_graph g(5, edges, distribution::block(5, 2));
  edge_property_map<vertex_id> w(
      g, [](const edge_handle& e) { return 10 * e.src + e.dst; });
  for (vertex_id v = 0; v < 5; ++v)
    for (const edge_handle e : g.out_edges(v)) EXPECT_EQ(w[e], 10 * e.src + e.dst);
}

TEST(EdgeMap, WritesStickPerEdge) {
  // Parallel edges have distinct ids and therefore distinct slots.
  std::vector<graph::edge> edges{{0, 1}, {0, 1}};
  distributed_graph g(2, edges, distribution::block(2, 1));
  edge_property_map<int> w(g, 0);
  std::vector<edge_handle> hs;
  for (const edge_handle e : g.out_edges(0)) hs.push_back(e);
  ASSERT_EQ(hs.size(), 2u);
  w[hs[0]] = 1;
  w[hs[1]] = 2;
  EXPECT_EQ(w[hs[0]], 1);
  EXPECT_EQ(w[hs[1]], 2);
}

TEST(EdgeMap, MirrorAgreesWithPrimary) {
  const auto edges = graph::erdos_renyi(30, 200, 13);
  distributed_graph g(30, edges, distribution::hashed(30, 3), /*bidirectional=*/true);
  edge_property_map<double> w(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 99, 50.0);
  });
  // Outside a run, read() resolves to the primary; compare against an
  // explicit mirror lookup via in-edge handles: both views must agree for
  // the same global edge id.
  std::map<std::uint64_t, double> primary;
  for (vertex_id v = 0; v < 30; ++v)
    for (const edge_handle e : g.out_edges(v)) primary[e.eid] = w[e];
  for (vertex_id v = 0; v < 30; ++v)
    for (const edge_handle e : g.in_edges(v))
      EXPECT_DOUBLE_EQ(primary.at(e.eid), graph::edge_weight(e.src, e.dst, 99, 50.0));
}

TEST(EdgeMap, ReadOutsideRunUsesPrimary) {
  const auto edges = graph::path_graph(4);
  distributed_graph g(4, edges, distribution::block(4, 2), true);
  edge_property_map<int> w(g, 0);
  for (vertex_id v = 0; v < 3; ++v)
    for (const edge_handle e : g.out_edges(v)) w[e] = static_cast<int>(e.eid) + 1;
  for (vertex_id v = 0; v < 3; ++v)
    for (const edge_handle e : g.out_edges(v)) EXPECT_EQ(w.read(e), static_cast<int>(e.eid) + 1);
}


TEST(EdgeMap, FromEdgeValuesMatchesInputOrder) {
  // File-style weights: one value per input edge, including distinct
  // values on parallel edges.
  std::vector<graph::edge> edges{{0, 1}, {2, 0}, {0, 1}, {1, 2}};
  std::vector<double> weights{1.5, 2.5, 3.5, 4.5};
  distributed_graph g(3, edges, distribution::cyclic(3, 2));
  auto w = edge_property_map<double>::from_edge_values(
      g, edges, std::span<const double>(weights));
  // Vertex 0's two parallel edges keep their input order: 1.5 then 3.5.
  std::vector<double> v0;
  for (const edge_handle e : g.out_edges(0)) v0.push_back(w[e]);
  ASSERT_EQ(v0.size(), 2u);
  EXPECT_DOUBLE_EQ(v0[0], 1.5);
  EXPECT_DOUBLE_EQ(v0[1], 3.5);
  for (const edge_handle e : g.out_edges(1)) EXPECT_DOUBLE_EQ(w[e], 4.5);
  for (const edge_handle e : g.out_edges(2)) EXPECT_DOUBLE_EQ(w[e], 2.5);
}

TEST(EdgeMap, FromEdgeValuesFillsMirrors) {
  std::vector<graph::edge> edges{{0, 1}, {1, 2}, {2, 0}};
  std::vector<double> weights{10, 20, 30};
  distributed_graph g(3, edges, distribution::block(3, 3), /*bidirectional=*/true);
  auto w = edge_property_map<double>::from_edge_values(
      g, edges, std::span<const double>(weights));
  // Mirror reads via in-edge handles must agree with the primaries.
  for (vertex_id v = 0; v < 3; ++v)
    for (const edge_handle e : g.in_edges(v)) {
      double want = e.src == 0 ? 10 : e.src == 1 ? 20 : 30;
      EXPECT_DOUBLE_EQ(w[e], want);  // primary (outside run, read allowed)
    }
}

TEST(EdgeMap, FileWeightsEndToEnd) {
  // Round-trip: write a weighted edge list, read it back, attach weights,
  // and check a weighted computation sees them.
  const std::string path = ::testing::TempDir() + "dpg_weighted_graph.txt";
  const std::vector<graph::edge> edges{{0, 1}, {1, 2}, {0, 2}};
  const std::vector<double> weights{1.0, 1.0, 5.0};
  graph::write_edge_list(path, 3, edges, weights);
  const auto file = graph::read_edge_list(path);
  distributed_graph g(file.num_vertices, file.edges, distribution::cyclic(3, 2));
  auto w = edge_property_map<double>::from_edge_values(
      g, file.edges, std::span<const double>(file.weights));
  double direct = 0, via1 = 0;
  for (const edge_handle e : g.out_edges(0)) (e.dst == 2 ? direct : via1) = w[e];
  EXPECT_DOUBLE_EQ(direct, 5.0);
  EXPECT_DOUBLE_EQ(via1, 1.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dpg::pmap
