// Edge property maps: primary storage at owner(src), mirror reads at
// owner(dst) for in-edge handles, functional fill consistency.
#include "pmap/edge_map.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <span>
#include <string>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace dpg::pmap {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;
using graph::vertex_id;

TEST(EdgeMap, UniformInit) {
  const auto edges = graph::cycle_graph(6);
  distributed_graph g(6, edges, distribution::cyclic(6, 2));
  edge_property_map<double> w(g, 3.5);
  for (vertex_id v = 0; v < 6; ++v)
    for (const edge_handle e : g.out_edges(v)) EXPECT_DOUBLE_EQ(w[e], 3.5);
}

TEST(EdgeMap, FunctionalFillUsesEdgeEndpoints) {
  const auto edges = graph::complete_graph(5);
  distributed_graph g(5, edges, distribution::block(5, 2));
  edge_property_map<vertex_id> w(
      g, [](const edge_handle& e) { return 10 * e.src + e.dst; });
  for (vertex_id v = 0; v < 5; ++v)
    for (const edge_handle e : g.out_edges(v)) EXPECT_EQ(w[e], 10 * e.src + e.dst);
}

TEST(EdgeMap, WritesStickPerEdge) {
  // Parallel edges have distinct ids and therefore distinct slots.
  std::vector<graph::edge> edges{{0, 1}, {0, 1}};
  distributed_graph g(2, edges, distribution::block(2, 1));
  edge_property_map<int> w(g, 0);
  std::vector<edge_handle> hs;
  for (const edge_handle e : g.out_edges(0)) hs.push_back(e);
  ASSERT_EQ(hs.size(), 2u);
  w[hs[0]] = 1;
  w[hs[1]] = 2;
  EXPECT_EQ(w[hs[0]], 1);
  EXPECT_EQ(w[hs[1]], 2);
}

TEST(EdgeMap, MirrorAgreesWithPrimary) {
  const auto edges = graph::erdos_renyi(30, 200, 13);
  distributed_graph g(30, edges, distribution::hashed(30, 3), /*bidirectional=*/true);
  edge_property_map<double> w(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 99, 50.0);
  });
  // Outside a run, read() resolves to the primary; compare against an
  // explicit mirror lookup via in-edge handles: both views must agree for
  // the same global edge id.
  std::map<std::uint64_t, double> primary;
  for (vertex_id v = 0; v < 30; ++v)
    for (const edge_handle e : g.out_edges(v)) primary[e.eid] = w[e];
  for (vertex_id v = 0; v < 30; ++v)
    for (const edge_handle e : g.in_edges(v))
      EXPECT_DOUBLE_EQ(primary.at(e.eid), graph::edge_weight(e.src, e.dst, 99, 50.0));
}

TEST(EdgeMap, ReadOutsideRunUsesPrimary) {
  const auto edges = graph::path_graph(4);
  distributed_graph g(4, edges, distribution::block(4, 2), true);
  edge_property_map<int> w(g, 0);
  for (vertex_id v = 0; v < 3; ++v)
    for (const edge_handle e : g.out_edges(v)) w[e] = static_cast<int>(e.eid) + 1;
  for (vertex_id v = 0; v < 3; ++v)
    for (const edge_handle e : g.out_edges(v)) EXPECT_EQ(w.read(e), static_cast<int>(e.eid) + 1);
}


TEST(EdgeMap, FromEdgeValuesMatchesInputOrder) {
  // File-style weights: one value per input edge, including distinct
  // values on parallel edges.
  std::vector<graph::edge> edges{{0, 1}, {2, 0}, {0, 1}, {1, 2}};
  std::vector<double> weights{1.5, 2.5, 3.5, 4.5};
  distributed_graph g(3, edges, distribution::cyclic(3, 2));
  auto w = edge_property_map<double>::from_edge_values(
      g, edges, std::span<const double>(weights));
  // Vertex 0's two parallel edges keep their input order: 1.5 then 3.5.
  std::vector<double> v0;
  for (const edge_handle e : g.out_edges(0)) v0.push_back(w[e]);
  ASSERT_EQ(v0.size(), 2u);
  EXPECT_DOUBLE_EQ(v0[0], 1.5);
  EXPECT_DOUBLE_EQ(v0[1], 3.5);
  for (const edge_handle e : g.out_edges(1)) EXPECT_DOUBLE_EQ(w[e], 4.5);
  for (const edge_handle e : g.out_edges(2)) EXPECT_DOUBLE_EQ(w[e], 2.5);
}

TEST(EdgeMap, FromEdgeValuesFillsMirrors) {
  std::vector<graph::edge> edges{{0, 1}, {1, 2}, {2, 0}};
  std::vector<double> weights{10, 20, 30};
  distributed_graph g(3, edges, distribution::block(3, 3), /*bidirectional=*/true);
  auto w = edge_property_map<double>::from_edge_values(
      g, edges, std::span<const double>(weights));
  // Mirror reads via in-edge handles must agree with the primaries.
  for (vertex_id v = 0; v < 3; ++v)
    for (const edge_handle e : g.in_edges(v)) {
      double want = e.src == 0 ? 10 : e.src == 1 ? 20 : 30;
      EXPECT_DOUBLE_EQ(w[e], want);  // primary (outside run, read allowed)
    }
}

TEST(EdgeMap, FileWeightsEndToEnd) {
  // Round-trip: write a weighted edge list, read it back, attach weights,
  // and check a weighted computation sees them.
  const std::string path = ::testing::TempDir() + "dpg_weighted_graph.txt";
  const std::vector<graph::edge> edges{{0, 1}, {1, 2}, {0, 2}};
  const std::vector<double> weights{1.0, 1.0, 5.0};
  graph::write_edge_list(path, 3, edges, weights);
  const auto file = graph::read_edge_list(path);
  distributed_graph g(file.num_vertices, file.edges, distribution::cyclic(3, 2));
  auto w = edge_property_map<double>::from_edge_values(
      g, file.edges, std::span<const double>(file.weights));
  double direct = 0, via1 = 0;
  for (const edge_handle e : g.out_edges(0)) (e.dst == 2 ? direct : via1) = w[e];
  EXPECT_DOUBLE_EQ(direct, 5.0);
  EXPECT_DOUBLE_EQ(via1, 1.0);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Lazy growth across topology versions (delta-CSR overlay).
// ---------------------------------------------------------------------------

TEST(EdgeMapGrowth, FunctionMapEvaluatesInitFnForDeltaEdges) {
  const auto edges = graph::cycle_graph(8);
  distributed_graph g(8, edges, distribution::cyclic(8, 2));
  edge_property_map<vertex_id> w(
      g, [](const edge_handle& e) { return 100 * e.src + e.dst; });
  EXPECT_EQ(w.observed_version(), g.version());

  const std::vector<graph::edge> extra{{0, 4}, {3, 7}, {0, 5}};
  g.apply_edges(extra);
  EXPECT_NE(w.observed_version(), g.version());  // not synced until touched
  for (vertex_id v = 0; v < 8; ++v)
    for (const edge_handle e : g.out_edges(v)) EXPECT_EQ(w[e], 100 * e.src + e.dst);
  EXPECT_EQ(w.observed_version(), g.version());
}

TEST(EdgeMapGrowth, FillMapExtendsWithFillValue) {
  const auto edges = graph::path_graph(6);
  distributed_graph g(6, edges, distribution::block(6, 3));
  edge_property_map<double> w(g, 2.5);
  g.apply_edges(std::vector<graph::edge>{{0, 5}, {4, 1}});
  for (vertex_id v = 0; v < 6; ++v)
    for (const edge_handle e : g.out_edges(v)) EXPECT_DOUBLE_EQ(w[e], 2.5);
}

TEST(EdgeMapGrowth, DeltaWritesStickAndSurviveFurtherGrowth) {
  const auto edges = graph::path_graph(5);
  distributed_graph g(5, edges, distribution::block(5, 2));
  edge_property_map<int> w(g, 0);
  g.apply_edges(std::vector<graph::edge>{{0, 3}});
  edge_handle delta{};
  for (const edge_handle e : g.out_edges(0))
    if (graph::is_delta_edge(e.eid)) delta = e;
  ASSERT_TRUE(graph::is_delta_edge(delta.eid));
  w[delta] = 42;
  // A second mutation grows the overlay again; earlier delta values stay.
  g.apply_edges(std::vector<graph::edge>{{0, 4}, {2, 0}});
  EXPECT_EQ(w[delta], 42);
  EXPECT_EQ(w.observed_version(), g.version());
}

TEST(EdgeMapGrowth, MirroredMapGrowsDeltaMirrors) {
  const auto edges = graph::erdos_renyi(20, 80, 3);
  distributed_graph g(20, edges, distribution::hashed(20, 3), /*bidirectional=*/true);
  edge_property_map<double> w(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 11, 9.0);
  });
  g.apply_edges(std::vector<graph::edge>{{1, 15}, {19, 0}, {7, 7}});
  // In-edge (mirror-slot) handles of overlay edges resolve through the
  // delta mirror shard and agree with the init function.
  std::size_t delta_mirrors = 0;
  for (vertex_id v = 0; v < 20; ++v)
    for (const edge_handle e : g.in_edges(v)) {
      if ((e.mirror_slot & graph::delta_edge_flag) != 0) ++delta_mirrors;
      EXPECT_DOUBLE_EQ(w[e], graph::edge_weight(e.src, e.dst, 11, 9.0));
    }
  EXPECT_EQ(delta_mirrors, 3u);
}

TEST(EdgeMapGrowth, FunctionMapRederivesAcrossCompact) {
  const auto edges = graph::erdos_renyi(16, 60, 6);
  distributed_graph g(16, edges, distribution::cyclic(16, 2));
  edge_property_map<vertex_id> w(
      g, [](const edge_handle& e) { return 7 * e.src + e.dst; });
  g.apply_edges(std::vector<graph::edge>{{2, 9}, {14, 3}});
  g.compact();  // renumbers: structure version bump forces full re-derive
  for (vertex_id v = 0; v < 16; ++v)
    for (const edge_handle e : g.out_edges(v)) {
      ASSERT_FALSE(graph::is_delta_edge(e.eid));
      EXPECT_EQ(w[e], 7 * e.src + e.dst);
    }
  EXPECT_EQ(w.observed_version(), g.version());
}

TEST(EdgeMapGrowthDeathTest, FillMapDiesAcrossCompact) {
  // A uniform-fill map survives apply_edges (fill value extends) but has
  // no recipe to re-derive per-edge writes across a renumbering compact().
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto edges = graph::path_graph(6);
  distributed_graph g(6, edges, distribution::block(6, 2));
  edge_property_map<int> w(g, 1);
  g.apply_edges(std::vector<graph::edge>{{0, 5}});
  g.compact();
  const edge_handle first = *g.out_edges(0).begin();
  EXPECT_DEATH((void)w[first], "stale edge property map.*compacted");
}

TEST(EdgeMapGrowthDeathTest, FromEdgeValuesRejectsDirtyGraph) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::vector<graph::edge> edges{{0, 1}, {1, 2}};
  const std::vector<double> vals{1.0, 2.0};
  distributed_graph g(3, edges, distribution::block(3, 1));
  g.apply_edges(std::vector<graph::edge>{{2, 0}});
  EXPECT_DEATH((void)edge_property_map<double>::from_edge_values(
                   g, std::span<const graph::edge>(edges), std::span<const double>(vals)),
               "compact");
}

}  // namespace
}  // namespace dpg::pmap
