// Vertex property maps: shard layout, owner discipline, local views.
#include "pmap/vertex_map.hpp"

#include <gtest/gtest.h>

#include <string>

#include "ampp/epoch.hpp"
#include "ampp/transport.hpp"
#include "graph/generators.hpp"

namespace dpg::pmap {
namespace {

using graph::distributed_graph;
using graph::distribution;

TEST(VertexMap, InitializesEverywhere) {
  const auto edges = graph::path_graph(10);
  distributed_graph g(10, edges, distribution::cyclic(10, 3));
  vertex_property_map<int> m(g, 7);
  for (graph::vertex_id v = 0; v < 10; ++v) EXPECT_EQ(m[v], 7);
}

TEST(VertexMap, WritesAreVisiblePerVertex) {
  const auto edges = graph::path_graph(20);
  distributed_graph g(20, edges, distribution::block(20, 4));
  vertex_property_map<std::uint64_t> m(g, 0);
  for (graph::vertex_id v = 0; v < 20; ++v) m[v] = v * v;
  for (graph::vertex_id v = 0; v < 20; ++v) EXPECT_EQ(m[v], v * v);
}

TEST(VertexMap, LocalShardMatchesDistribution) {
  const auto edges = graph::path_graph(13);
  distributed_graph g(13, edges, distribution::cyclic(13, 4));
  vertex_property_map<graph::vertex_id> m(g, 0);
  for (ampp::rank_t r = 0; r < 4; ++r) {
    auto span = m.local(r);
    ASSERT_EQ(span.size(), g.dist().count(r));
    for (std::size_t li = 0; li < span.size(); ++li) span[li] = m.global_id(r, li);
  }
  for (graph::vertex_id v = 0; v < 13; ++v) EXPECT_EQ(m[v], v);
}

TEST(VertexMap, NonTrivialValueTypes) {
  const auto edges = graph::path_graph(5);
  distributed_graph g(5, edges, distribution::block(5, 2));
  vertex_property_map<std::string> m(g, "x");
  m[3] = "hello";
  EXPECT_EQ(m[3], "hello");
  EXPECT_EQ(m[2], "x");
}

TEST(VertexMap, FillResetsAllShards) {
  const auto edges = graph::path_graph(9);
  distributed_graph g(9, edges, distribution::hashed(9, 3));
  vertex_property_map<int> m(g, 1);
  m[4] = 99;
  m.fill(5);
  for (graph::vertex_id v = 0; v < 9; ++v) EXPECT_EQ(m[v], 5);
}

TEST(VertexMap, OwnerLocalAccessInsideRun) {
  // Each rank writes only its own vertices inside a run; afterwards all
  // values must be visible globally.
  const graph::vertex_id n = 32;
  const auto edges = graph::path_graph(n);
  distributed_graph g(n, edges, distribution::cyclic(n, 4));
  vertex_property_map<std::uint64_t> m(g, 0);
  ampp::transport tp(ampp::transport_config{.n_ranks = 4});
  tp.run([&](ampp::transport_context& ctx) {
    auto mine = m.local(ctx.rank());
    for (std::size_t li = 0; li < mine.size(); ++li)
      mine[li] = m.global_id(ctx.rank(), li) + 100;
  });
  for (graph::vertex_id v = 0; v < n; ++v) EXPECT_EQ(m[v], v + 100);
}

TEST(VertexMap, ValuesSurviveTopologyMutation) {
  // Edge mutation never changes the vertex set: values must survive both
  // apply_edges() and compact() untouched, and the map must acknowledge
  // the new topology version on first access (the lazy subscription that
  // makes in-place warm restarts possible).
  const graph::vertex_id n = 12;
  distributed_graph g(n, graph::path_graph(n), distribution::cyclic(n, 3));
  vertex_property_map<int> m(g, 0);
  for (graph::vertex_id v = 0; v < n; ++v) m[v] = static_cast<int>(v) + 1;
  EXPECT_EQ(m.observed_version(), g.version());

  g.apply_edges(std::vector<graph::edge>{{0, 11}, {5, 2}});
  EXPECT_NE(m.observed_version(), g.version());  // not synced until touched
  for (graph::vertex_id v = 0; v < n; ++v) EXPECT_EQ(m[v], static_cast<int>(v) + 1);
  EXPECT_EQ(m.observed_version(), g.version());

  g.compact();
  for (graph::vertex_id v = 0; v < n; ++v) EXPECT_EQ(m[v], static_cast<int>(v) + 1);
  EXPECT_EQ(m.observed_version(), g.version());
}

TEST(VertexMapDeathTest, ForeignAccessAbortsInsideRun) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const graph::vertex_id n = 8;
  const auto edges = graph::path_graph(n);
  distributed_graph g(n, edges, distribution::block(n, 2));
  vertex_property_map<int> m(g, 0);
  auto touch_foreign = [&] {
    ampp::transport tp(ampp::transport_config{.n_ranks = 2});
    tp.run([&](ampp::transport_context& ctx) {
      if (ctx.rank() == 0) m[7] = 1;  // vertex 7 is owned by rank 1
      ctx.barrier();
    });
  };
  EXPECT_DEATH(touch_foreign(), "does not own");
}

}  // namespace
}  // namespace dpg::pmap
