// Lock map (§IV-B): scheme layout, mutual exclusion under contention, and
// the atomic single-value fast path.
#include "pmap/lock_map.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace dpg::pmap {
namespace {

using graph::distribution;

TEST(LockMap, PerVertexGivesDistinctLocksWithinRank) {
  auto d = distribution::block(64, 2);
  lock_map lm(d, lock_scheme::per_vertex);
  // Vertices 0 and 1 are both on rank 0 but must use different locks.
  EXPECT_NE(&lm.lock_for(0), &lm.lock_for(1));
}

TEST(LockMap, BlockSchemeSharesLocksWithinBlock) {
  auto d = distribution::block(256, 1);
  lock_map lm(d, lock_scheme::per_block, /*block_bits=*/4);  // 16 vertices/lock
  EXPECT_EQ(&lm.lock_for(0), &lm.lock_for(15));
  EXPECT_NE(&lm.lock_for(0), &lm.lock_for(16));
}

TEST(LockMap, GuardProvidesMutualExclusion) {
  auto d = distribution::block(8, 1);
  lock_map lm(d, lock_scheme::per_vertex);
  std::uint64_t counter = 0;  // deliberately non-atomic
  constexpr int kThreads = 4, kIters = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        auto g = lm.guard(3);
        ++counter;
      }
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(AtomicUpdateIf, RelaxesLikeSssp) {
  double dist = 100.0;
  auto less = [](double cur, double prop) { return prop < cur; };
  EXPECT_TRUE(atomic_update_if(dist, 50.0, less));
  EXPECT_DOUBLE_EQ(dist, 50.0);
  EXPECT_FALSE(atomic_update_if(dist, 70.0, less));
  EXPECT_DOUBLE_EQ(dist, 50.0);
  EXPECT_TRUE(atomic_update_if(dist, 49.0, less));
}

TEST(AtomicUpdateIf, ConcurrentMinConverges) {
  std::uint64_t value = ~0ULL;
  auto less = [](std::uint64_t cur, std::uint64_t prop) { return prop < cur; };
  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 10000; ++i)
        atomic_update_if(value, (i * 7919 + t * 104729) % 1000000, less);
    });
  for (auto& t : ts) t.join();
  // The global minimum of all proposed values must have won. Compute it.
  std::uint64_t expect = ~0ULL;
  for (int t = 0; t < kThreads; ++t)
    for (std::uint64_t i = 0; i < 10000; ++i)
      expect = std::min(expect, (i * 7919 + t * 104729) % 1000000);
  EXPECT_EQ(value, expect);
}

TEST(LockedUpdateIf, SameSemanticsAsAtomic) {
  dpg::spinlock lk;
  std::string s = "zebra";
  auto lex_less = [](const std::string& cur, const std::string& prop) { return prop < cur; };
  EXPECT_TRUE(locked_update_if(lk, s, std::string("apple"), lex_less));
  EXPECT_EQ(s, "apple");
  EXPECT_FALSE(locked_update_if(lk, s, std::string("mango"), lex_less));
  EXPECT_EQ(s, "apple");
}

TEST(AtomicCapableConcept, ClassifiesTypes) {
  static_assert(atomic_capable<int>);
  static_assert(atomic_capable<double>);
  static_assert(atomic_capable<std::uint64_t>);
  static_assert(!atomic_capable<std::string>);
  struct big {
    double a, b, c;
  };
  static_assert(!atomic_capable<big>);
  SUCCEED();
}

}  // namespace
}  // namespace dpg::pmap
