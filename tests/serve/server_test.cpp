// The multi-tenant serving front end, end to end:
//   * session results agree bit-for-bit with direct solver runs,
//   * N identical concurrent queries cost exactly one solve (merge + cache),
//   * repair_query() warm-repairs after apply_edges() and still matches a
//     cold solve exactly,
//   * the split transport-config API round-trips,
//   * per-tenant attribution adds up.
#include <gtest/gtest.h>

#include <barrier>
#include <map>
#include <thread>
#include <vector>

#include "algo/baselines.hpp"
#include "algo/sessions.hpp"
#include "graph/generators.hpp"
#include "serve/server.hpp"

namespace dpg::serve {
namespace {

using graph::distributed_graph;
using graph::distribution;

constexpr graph::vertex_id kN = 120;

double wfn_value(const graph::edge_handle& e) {
  return graph::edge_weight(e.src, e.dst, 13, 10.0);
}

struct fixture {
  distributed_graph g;
  pmap::edge_property_map<double> w;

  explicit fixture(std::uint64_t gseed = 5)
      : g(kN, graph::symmetrize(graph::erdos_renyi(kN, 600, gseed)),
          distribution::cyclic(kN, 2)),
        w(g, wfn_value) {}

  server_config cfg() const { return {.machine = {.n_ranks = 2}}; }
};

TEST(TransportConfigSplit, JoinRoundTripsTheFlatAggregate) {
  const ampp::transport_config flat{.n_ranks = 3,
                                    .coalescing_size = 17,
                                    .seed = 99,
                                    .faults = ampp::fault_plan::lossy(7),
                                    .handler_threads = 2};
  const ampp::machine_config m = flat.machine();
  const ampp::tuning_config t = flat.tuning();
  EXPECT_EQ(m.n_ranks, 3);
  EXPECT_EQ(m.handler_threads, 2u);
  EXPECT_EQ(t.coalescing_size, 17u);
  EXPECT_EQ(t.seed, 99u);
  const ampp::transport_config back = ampp::transport_config::join(m, t);
  EXPECT_EQ(back.n_ranks, flat.n_ranks);
  EXPECT_EQ(back.coalescing_size, flat.coalescing_size);
  EXPECT_EQ(back.seed, flat.seed);
  EXPECT_EQ(back.handler_threads, flat.handler_threads);
}

TEST(ServerTest, SsspMatchesDirectSolverAndOracle) {
  fixture fx;
  server srv(fx.g, fx.w, fx.cfg());
  auto r = srv.query({.algo = algorithm::sssp, .params = {.source = 0}});
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->converged);
  EXPECT_FALSE(r->warm_repair);
  EXPECT_GT(r->modifications, 0u);
  EXPECT_GT(r->stats_delta.core.messages_sent, 0u);

  // Against the sequential oracle...
  const auto oracle = algo::dijkstra(fx.g, fx.w, 0);
  for (graph::vertex_id v = 0; v < kN; ++v)
    EXPECT_EQ(r->value_as_double(v), oracle[v]) << "v=" << v;

  // ...and bit-identical to a hand-assembled solo solver run.
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  algo::sssp_solver solver(tp, fx.g, fx.w);
  tp.run([&](ampp::transport_context& ctx) { solver.run_fixed_point(ctx, 0); });
  for (graph::vertex_id v = 0; v < kN; ++v)
    EXPECT_EQ(r->values[v], std::bit_cast<std::uint64_t>(solver.dist()[v]))
        << "v=" << v;
}

TEST(ServerTest, BfsAndCcMatchDirectSolvers) {
  fixture fx;
  server srv(fx.g, fx.w, fx.cfg());

  auto rb = srv.query({.algo = algorithm::bfs, .params = {.source = 3}});
  ASSERT_NE(rb, nullptr);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  algo::bfs_solver bfs(tp, fx.g);
  tp.run([&](ampp::transport_context& ctx) { bfs.run_fixed_point(ctx, 3); });
  for (graph::vertex_id v = 0; v < kN; ++v)
    EXPECT_EQ(rb->value(v), bfs.depth()[v]) << "v=" << v;

  // CC labels are deterministic only up to relabelling (which search claims
  // a vertex first is schedule-dependent), so compare partitions.
  auto rc = srv.query({.algo = algorithm::cc});
  ASSERT_NE(rc, nullptr);
  algo::cc_solver cc(fx.g, ampp::transport_config{.n_ranks = 2});
  cc.solve();
  std::map<std::uint64_t, std::uint64_t> fwd, rev;
  for (graph::vertex_id v = 0; v < kN; ++v) {
    const std::uint64_t a = rc->value(v), b = cc.components()[v];
    auto [fa, fi] = fwd.try_emplace(a, b);
    auto [ra, ri] = rev.try_emplace(b, a);
    (void)fi;
    (void)ri;
    EXPECT_EQ(fa->second, b) << "v=" << v;
    EXPECT_EQ(ra->second, a) << "v=" << v;
  }
}

// The admission guarantee behind the serving throughput claim: N identical
// queries — no matter how they interleave — cost exactly one solve. Late
// arrivals hit the cache; concurrent arrivals merge onto the in-flight
// leader; the leadership double-check closes the miss→register window.
TEST(ServerTest, ConcurrentIdenticalQueriesSolveOnce) {
  fixture fx;
  server srv(fx.g, fx.w, fx.cfg());
  constexpr int kClients = 8;
  std::vector<std::shared_ptr<const session_result>> results(kClients);
  std::barrier start(kClients);
  {
    std::vector<std::jthread> clients;
    for (int i = 0; i < kClients; ++i)
      clients.emplace_back([&, i] {
        start.arrive_and_wait();
        results[i] =
            srv.query({.algo = algorithm::sssp, .params = {.source = 7},
                       .tenant = static_cast<std::uint64_t>(i)});
      });
  }
  std::uint64_t solves = 0, hits = 0, merged = 0;
  for (int i = 0; i < kClients; ++i) {
    ASSERT_NE(results[i], nullptr) << i;
    ASSERT_EQ(results[i]->values.size(), static_cast<std::size_t>(kN));
    EXPECT_EQ(results[i]->values, results[0]->values) << i;
    const auto t = srv.obs().tenant(static_cast<std::uint64_t>(i));
    EXPECT_EQ(t.queries, 1u);
    solves += t.solves;
    hits += t.cache_hits;
    merged += t.merged;
  }
  EXPECT_EQ(solves, 1u) << "identical queries must coalesce to one solve";
  EXPECT_EQ(hits + merged, static_cast<std::uint64_t>(kClients) - 1u);
  EXPECT_EQ(srv.pool().created(), 1u);
}

TEST(ServerTest, RepairQueryWarmRepairsAndMatchesColdSolve) {
  fixture fx;
  server srv(fx.g, fx.w, fx.cfg());
  const query q{.algo = algorithm::sssp, .params = {.source = 0}, .tenant = 1};

  auto cold = srv.query(q);
  ASSERT_NE(cold, nullptr);

  // Mutate: symmetric shortcut edges (the graph is undirected).
  const std::vector<graph::edge> extra = {{0, 60}, {60, 0}, {5, 90}, {90, 5}};
  srv.apply_edges(extra, /*tenant=*/1);

  auto warm = srv.repair_query(q);
  ASSERT_NE(warm, nullptr);
  EXPECT_TRUE(warm->warm_repair) << "the pooled session should repair, not re-solve";
  EXPECT_EQ(warm->graph_version, srv.version());

  // Exactness: the warm repair equals a from-scratch solve on the mutated
  // topology, bit for bit.
  fixture fresh;  // same seed → same base graph
  fresh.g.apply_edges(extra);
  ampp::transport tp(ampp::transport_config{.n_ranks = 2});
  algo::sssp_solver solver(tp, fresh.g, fresh.w);
  tp.run([&](ampp::transport_context& ctx) { solver.run_fixed_point(ctx, 0); });
  for (graph::vertex_id v = 0; v < kN; ++v)
    EXPECT_EQ(warm->values[v], std::bit_cast<std::uint64_t>(solver.dist()[v]))
        << "v=" << v;

  EXPECT_EQ(srv.obs().tenant(1).repairs, 1u);

  // A repair_query with *different* params can't reuse the session's state:
  // it transparently falls back to a full solve and is still correct.
  auto other = srv.repair_query(
      {.algo = algorithm::sssp, .params = {.source = 42}, .tenant = 1});
  ASSERT_NE(other, nullptr);
  EXPECT_FALSE(other->warm_repair);
  const auto oracle = algo::dijkstra(fresh.g, fresh.w, 42);
  for (graph::vertex_id v = 0; v < kN; ++v)
    EXPECT_EQ(other->value_as_double(v), oracle[v]) << "v=" << v;
}

// Regression: warm repair is sound only when the session's state is exactly
// one mutation behind the seeds. The server overwrites its recorded seeds on
// every apply_edges(), so after two back-to-back mutations the seeds cover
// only the newest batch — a session whose last run predates both must detect
// the version gap and fall back to a full solve, never serve too-large
// distances stamped with the live version.
TEST(ServerTest, RepairFallsBackAfterMultipleMutations) {
  fixture fx;
  server srv(fx.g, fx.w, fx.cfg());
  const query q{.algo = algorithm::sssp, .params = {.source = 0}, .tenant = 2};

  auto cold = srv.query(q);
  ASSERT_NE(cold, nullptr);

  // Two mutations back to back: batch1's endpoints vanish from the recorded
  // seeds when batch2 overwrites them.
  const std::vector<graph::edge> batch1 = {{0, 100}, {100, 0}};
  const std::vector<graph::edge> batch2 = {{7, 110}, {110, 7}};
  srv.apply_edges(batch1, /*tenant=*/2);
  srv.apply_edges(batch2, /*tenant=*/2);

  auto r = srv.repair_query(q);
  ASSERT_NE(r, nullptr);
  EXPECT_FALSE(r->warm_repair)
      << "a session two mutations behind the seeds must full-solve";
  EXPECT_EQ(r->graph_version, srv.version());

  // Exact against the oracle on the twice-mutated topology — batch1's
  // shortcut must be reflected even though its endpoints left the seeds.
  fixture fresh;  // same seed → same base graph
  fresh.g.apply_edges(batch1);
  fresh.g.apply_edges(batch2);
  const auto oracle = algo::dijkstra(fresh.g, fresh.w, 0);
  for (graph::vertex_id v = 0; v < kN; ++v)
    EXPECT_EQ(r->value_as_double(v), oracle[v]) << "v=" << v;

  // Once re-solved at the live version, the next mutate→repair cycle is
  // warm again: the session is now exactly one mutation behind the seeds.
  const std::vector<graph::edge> batch3 = {{3, 115}, {115, 3}};
  srv.apply_edges(batch3, /*tenant=*/2);
  auto warm = srv.repair_query(q);
  ASSERT_NE(warm, nullptr);
  EXPECT_TRUE(warm->warm_repair);
  fresh.g.apply_edges(batch3);
  const auto oracle3 = algo::dijkstra(fresh.g, fresh.w, 0);
  for (graph::vertex_id v = 0; v < kN; ++v)
    EXPECT_EQ(warm->value_as_double(v), oracle3[v]) << "v=" << v;
}

TEST(ServerTest, KcoreAndPagerankSessionsMatchBaselines) {
  // k-core (and its streaming maintainer) is defined on simple symmetric
  // graphs, so this fixture simplifies the symmetrized generator output.
  distributed_graph g(
      kN, graph::simplify(graph::symmetrize(graph::erdos_renyi(kN, 300, 5))),
      distribution::cyclic(kN, 2));
  pmap::edge_property_map<double> w(g, wfn_value);
  server srv(g, w, {.machine = {.n_ranks = 2}});

  auto rk = srv.query({.algo = algorithm::kcore});
  ASSERT_NE(rk, nullptr);
  EXPECT_TRUE(rk->converged);
  const auto cores = algo::kcore_peel(g);
  for (graph::vertex_id v = 0; v < kN; ++v)
    EXPECT_EQ(rk->value(v), cores[v]) << "v=" << v;

  // PageRank: fixed 20-iteration power method, damping defaults to 0.85.
  auto rp = srv.query({.algo = algorithm::pagerank});
  ASSERT_NE(rp, nullptr);
  EXPECT_EQ(rp->rounds, 20u);
  const auto oracle = algo::pagerank(g, 0.85, 20);
  for (graph::vertex_id v = 0; v < kN; ++v)
    ASSERT_NEAR(rp->value_as_double(v), oracle[v], 1e-12) << "v=" << v;

  // delta in (0,1) re-parameterizes the damping factor (and is a distinct
  // cache key, so this is a fresh solve, not a hit).
  auto rp50 = srv.query({.algo = algorithm::pagerank, .params = {.delta = 0.5}});
  const auto oracle50 = algo::pagerank(g, 0.5, 20);
  for (graph::vertex_id v = 0; v < kN; ++v)
    ASSERT_NEAR(rp50->value_as_double(v), oracle50[v], 1e-12) << "v=" << v;
}

// The streaming ingest path end to end: one apply_mutation() batch that both
// appends and tombstones, then warm repair_query() for every algorithm with
// an incremental path — all exactly equal to the sequential oracles on the
// mutated live view (the baselines walk the same tombstone-skipping
// iterators the solvers do).
TEST(ServerTest, ApplyMutationWarmRepairsSsspCcKcore) {
  distributed_graph g(
      kN, graph::simplify(graph::symmetrize(graph::erdos_renyi(kN, 420, 9))),
      distribution::cyclic(kN, 2));
  pmap::edge_property_map<double> w(g, wfn_value);
  server srv(g, w, {.machine = {.n_ranks = 2}});
  const query qs{.algo = algorithm::sssp, .params = {.source = 0}};
  const query qc{.algo = algorithm::cc};
  const query qk{.algo = algorithm::kcore};

  // Cold solves pin the pooled sessions to the pre-mutation version.
  ASSERT_NE(srv.query(qs), nullptr);
  ASSERT_NE(srv.query(qc), nullptr);
  ASSERT_NE(srv.query(qk), nullptr);
  const std::uint64_t v0 = srv.version();

  // One mixed batch: pick two existing symmetric pairs to delete (both
  // directed halves) and add two fresh pairs.
  std::vector<graph::edge> dels;
  for (const auto e : g.out_edges(0)) {
    dels.push_back({e.src, e.dst});
    dels.push_back({e.dst, e.src});
    if (dels.size() == 4) break;
  }
  ASSERT_EQ(dels.size(), 4u) << "fixture vertex 0 needs degree >= 2";
  const std::vector<graph::edge> adds = {{2, 117}, {117, 2}, {50, 81}, {81, 50}};
  srv.apply_mutation(adds, dels);
  EXPECT_EQ(srv.version(), v0 + 2) << "one bump per apply + per remove";

  auto rs = srv.repair_query(qs);
  auto rc = srv.repair_query(qc);
  auto rk = srv.repair_query(qk);
  ASSERT_NE(rs, nullptr);
  ASSERT_NE(rc, nullptr);
  ASSERT_NE(rk, nullptr);
  EXPECT_TRUE(rs->warm_repair) << "sssp should decrementally repair, not re-solve";
  EXPECT_TRUE(rc->warm_repair) << "cc should ride the union-find maintainer";
  EXPECT_TRUE(rk->warm_repair) << "kcore should ride the peel-frontier maintainer";

  const auto dist = algo::dijkstra(g, w, 0);
  const auto labels = algo::cc_union_find(g);
  const auto cores = algo::kcore_peel(g);
  for (graph::vertex_id v = 0; v < kN; ++v) {
    EXPECT_EQ(rs->value_as_double(v), dist[v]) << "v=" << v;
    EXPECT_EQ(rc->value(v), labels[v]) << "v=" << v;
    EXPECT_EQ(rk->value(v), cores[v]) << "v=" << v;
  }

  // The remove_edges() shorthand chains: sessions repaired to the live
  // version above are exactly one mutation behind again.
  const std::vector<graph::edge> dels2 = {adds[0], adds[1]};
  srv.remove_edges(dels2);
  auto rs2 = srv.repair_query(qs);
  ASSERT_NE(rs2, nullptr);
  EXPECT_TRUE(rs2->warm_repair);
  const auto dist2 = algo::dijkstra(g, w, 0);
  for (graph::vertex_id v = 0; v < kN; ++v)
    EXPECT_EQ(rs2->value_as_double(v), dist2[v]) << "v=" << v;
}

TEST(ServerTest, ServingSummaryRendersContextsAndTenants) {
  fixture fx;
  server srv(fx.g, fx.w, fx.cfg());
  srv.query({.algo = algorithm::sssp, .params = {.source = 0}, .tenant = 3});
  srv.query({.algo = algorithm::bfs, .params = {.source = 0}, .tenant = 4});
  const std::string s = srv.serving_summary();
  EXPECT_NE(s.find("sssp"), std::string::npos);
  EXPECT_NE(s.find("bfs"), std::string::npos);
  EXPECT_NE(s.find("tenant"), std::string::npos);
  // The drain folded every live session's registry into the rollup.
  EXPECT_GT(srv.obs().total().core.messages_sent, 0u);
}

}  // namespace
}  // namespace dpg::serve
