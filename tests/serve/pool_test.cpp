// The warm session pool: checkout/return lifecycle, warm reuse, re-pinning
// of stale sessions at checkout, retirement accounting, and the rollup of
// retired sessions' observability registries.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "graph/generators.hpp"
#include "algo/sessions.hpp"
#include "serve/pool.hpp"

namespace dpg::serve {
namespace {

using graph::distributed_graph;
using graph::distribution;

/// A tiny deterministic serving substrate shared by the pool tests.
struct fixture {
  static constexpr graph::vertex_id n = 40;
  distributed_graph g;
  pmap::edge_property_map<double> w;
  algo::session_env env;

  fixture()
      : g(n, graph::erdos_renyi(n, 160, 5), distribution::cyclic(n, 2)),
        w(g, [](const graph::edge_handle& e) {
          return graph::edge_weight(e.src, e.dst, 3, 10.0);
        }) {
    env.g = &g;
    env.weights = &w;
    env.machine = {.n_ranks = 2};
    env.pool = std::make_shared<ampp::wire_pool>(2);
  }

  session_pool::factory_fn factory() {
    return [this](algorithm a) { return algo::make_solver_session(a, env); };
  }
};

TEST(SessionPool, ColdCheckoutThenWarmReuse) {
  fixture fx;
  session_pool pool(fx.factory(), /*max_warm_per_algo=*/2);

  {
    auto lease = pool.checkout(algorithm::sssp);
    ASSERT_TRUE(lease);
    EXPECT_EQ(lease->algo(), algorithm::sssp);
    EXPECT_EQ(pool.created(), 1u);
    EXPECT_EQ(pool.outstanding(), 1u);
    const session_result r = lease->run({.source = 0});
    EXPECT_EQ(r.values.size(), fx.g.num_vertices());
    EXPECT_EQ(r.value_as_double(0), 0.0);
  }
  // Returned warm...
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.warm_count(algorithm::sssp), 1u);

  // ...and the next checkout reuses it instead of building a new one.
  {
    auto lease = pool.checkout(algorithm::sssp);
    EXPECT_EQ(pool.created(), 1u);
    EXPECT_EQ(pool.warm_hits(), 1u);
  }
}

TEST(SessionPool, PerAlgorithmWarmLists) {
  fixture fx;
  session_pool pool(fx.factory(), 2);
  {
    auto a = pool.checkout(algorithm::sssp);
    auto b = pool.checkout(algorithm::bfs);
    EXPECT_EQ(pool.outstanding(), 2u);
  }
  EXPECT_EQ(pool.warm_count(algorithm::sssp), 1u);
  EXPECT_EQ(pool.warm_count(algorithm::bfs), 1u);
  // A bfs checkout never hands back the warm sssp session.
  auto lease = pool.checkout(algorithm::bfs);
  EXPECT_EQ(lease->algo(), algorithm::bfs);
  EXPECT_EQ(pool.warm_count(algorithm::bfs), 0u);
  EXPECT_EQ(pool.warm_count(algorithm::sssp), 1u);
}

TEST(SessionPool, OverflowRetiresIntoRollup) {
  fixture fx;
  obs::rollup sink;
  session_pool pool(fx.factory(), /*max_warm_per_algo=*/1, &sink);
  {
    auto a = pool.checkout(algorithm::sssp);
    auto b = pool.checkout(algorithm::sssp);
    a->run({.source = 0});
    b->run({.source = 1});
    EXPECT_EQ(pool.created(), 2u);
  }
  // Only one fits the warm list; the other retired and its registry (with
  // the counters of the run it executed) was absorbed into the sink.
  EXPECT_EQ(pool.warm_count(algorithm::sssp), 1u);
  EXPECT_EQ(pool.retired(), 1u);
  const auto rows = sink.contexts();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].label, "sssp");
  EXPECT_EQ(rows[0].contexts, 1u);
  EXPECT_GT(rows[0].totals.core.messages_sent, 0u);

  // drain() retires the warm remainder too — nothing's counters are lost.
  pool.drain();
  EXPECT_EQ(pool.retired(), 2u);
  EXPECT_EQ(sink.contexts()[0].contexts, 2u);
  EXPECT_EQ(pool.warm_count(algorithm::sssp), 0u);
}

TEST(SessionPool, CheckoutRebindsStaleSessions) {
  fixture fx;
  session_pool pool(fx.factory(), 2);
  {
    auto lease = pool.checkout(algorithm::sssp);
    lease->run({.source = 0});
    EXPECT_TRUE(lease->snapshot().current());
  }
  // Mutate while the session sits warm: its pin goes stale.
  const std::vector<graph::edge> extra = {{1, 2}};
  fx.g.apply_edges(extra);

  auto lease = pool.checkout(algorithm::sssp);
  EXPECT_EQ(pool.rebinds(), 1u) << "checkout must re-pin a stale session";
  EXPECT_TRUE(lease->snapshot().current());
  const session_result r = lease->run({.source = 0});
  EXPECT_EQ(r.graph_version, fx.g.version());
}

TEST(SessionPool, MovedLeaseReturnsExactlyOnce) {
  fixture fx;
  session_pool pool(fx.factory(), 2);
  auto a = pool.checkout(algorithm::cc);
  session_pool::lease b = std::move(a);
  EXPECT_FALSE(a);
  ASSERT_TRUE(b);
  EXPECT_EQ(pool.outstanding(), 1u);
  b.release();
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.warm_count(algorithm::cc), 1u);
}

}  // namespace
}  // namespace dpg::serve
