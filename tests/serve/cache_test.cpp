// The serving result cache: hit/miss accounting, FIFO capacity eviction,
// and — the property the serving layer leans on — version-keyed
// invalidation: apply_edges() bumps the topology version, so every cached
// result pinned to the old version must become unreachable (a stale-version
// checkout is a miss, never a wrong answer).
#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "graph/generators.hpp"
#include "serve/cache.hpp"
#include "serve/server.hpp"

namespace dpg::serve {
namespace {

using graph::distributed_graph;
using graph::distribution;

std::shared_ptr<const session_result> dummy(std::uint64_t version) {
  auto r = std::make_shared<session_result>();
  r->graph_version = version;
  r->values = {1, 2, 3};
  return r;
}

TEST(ResultCache, HitMissAndOverwrite) {
  result_cache c(8);
  const cache_key k{.version = 1, .algo = algorithm::sssp, .params = {.source = 0}};
  EXPECT_EQ(c.lookup(k), nullptr);
  EXPECT_EQ(c.misses(), 1u);

  c.insert(k, dummy(1));
  auto hit = c.lookup(k);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->graph_version, 1u);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_GT(c.hit_rate(), 0.0);

  // Same key, new result: overwrite, not a duplicate entry.
  c.insert(k, dummy(1));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.insertions(), 2u);
}

TEST(ResultCache, DistinctParamsAreDistinctEntries) {
  result_cache c(8);
  const cache_key a{.version = 1, .algo = algorithm::sssp, .params = {.source = 0}};
  const cache_key b{.version = 1, .algo = algorithm::sssp, .params = {.source = 1}};
  const cache_key d{.version = 1, .algo = algorithm::sssp,
                    .params = {.source = 0, .delta = 2.0}};
  const cache_key e{.version = 1, .algo = algorithm::bfs, .params = {.source = 0}};
  c.insert(a, dummy(1));
  EXPECT_EQ(c.lookup(b), nullptr);
  EXPECT_EQ(c.lookup(d), nullptr);
  EXPECT_EQ(c.lookup(e), nullptr);
  EXPECT_NE(c.lookup(a), nullptr);
}

TEST(ResultCache, FifoEvictionPastCapacity) {
  result_cache c(3);
  for (std::uint64_t i = 0; i < 5; ++i)
    c.insert({.version = 1, .algo = algorithm::sssp, .params = {.source = i}},
             dummy(1));
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.evictions(), 2u);
  // The two oldest are gone; the three newest survive.
  EXPECT_EQ(c.lookup({.version = 1, .algo = algorithm::sssp, .params = {.source = 0}}),
            nullptr);
  EXPECT_EQ(c.lookup({.version = 1, .algo = algorithm::sssp, .params = {.source = 1}}),
            nullptr);
  for (std::uint64_t i = 2; i < 5; ++i)
    EXPECT_NE(
        c.lookup({.version = 1, .algo = algorithm::sssp, .params = {.source = i}}),
        nullptr)
        << i;
}

// Regression: key equality must agree with the hasher, which hashes delta's
// bit pattern. With double comparison a NaN delta never equals itself, so
// FIFO eviction erased nothing for a NaN key and could underflow the deque;
// +0.0/-0.0 compared equal but hashed apart.
TEST(ResultCache, NonFiniteAndSignedZeroDeltasStayConsistent) {
  result_cache c(2);
  const cache_key kn{.version = 1, .algo = algorithm::sssp,
                     .params = {.source = 0,
                                .delta = std::numeric_limits<double>::quiet_NaN()}};
  c.insert(kn, dummy(1));
  // A NaN key is re-findable (bit-pattern equality)...
  EXPECT_NE(c.lookup(kn), nullptr);
  // ...and evictable: overfill the cache; the map never outgrows capacity
  // and the FIFO never runs dry while entries remain.
  for (std::uint64_t s = 1; s <= 4; ++s)
    c.insert({.version = 1, .algo = algorithm::sssp, .params = {.source = s}},
             dummy(1));
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.lookup(kn), nullptr);

  // +0.0 and -0.0 hash differently, so they must also compare unequal —
  // two distinct, individually reachable entries.
  const cache_key kp{.version = 1, .algo = algorithm::bfs,
                     .params = {.source = 9, .delta = 0.0}};
  const cache_key km{.version = 1, .algo = algorithm::bfs,
                     .params = {.source = 9, .delta = -0.0}};
  c.insert(kp, dummy(1));
  c.insert(km, dummy(2));
  EXPECT_EQ(c.size(), 2u);
  auto rp = c.lookup(kp);
  auto rm = c.lookup(km);
  ASSERT_NE(rp, nullptr);
  ASSERT_NE(rm, nullptr);
  EXPECT_EQ(rp->graph_version, 1u);
  EXPECT_EQ(rm->graph_version, 2u);
}

TEST(ResultCache, InvalidateStaleDropsOldVersionsOnly) {
  result_cache c(16);
  for (std::uint64_t v = 1; v <= 3; ++v)
    for (std::uint64_t s = 0; s < 4; ++s)
      c.insert({.version = v, .algo = algorithm::sssp, .params = {.source = s}},
               dummy(v));
  EXPECT_EQ(c.size(), 12u);
  EXPECT_EQ(c.invalidate_stale(3), 8u);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.invalidations(), 8u);
  for (std::uint64_t s = 0; s < 4; ++s)
    EXPECT_NE(
        c.lookup({.version = 3, .algo = algorithm::sssp, .params = {.source = s}}),
        nullptr);
}

// The end-to-end invalidation contract: a query cached before apply_edges()
// must not be served after it — the server re-keys on the live version, so
// the post-mutation lookup misses and re-solves against the new topology.
TEST(ResultCache, ServerInvalidatesOnApplyEdges) {
  const graph::vertex_id n = 60;
  const auto edges = graph::erdos_renyi(n, 240, 7);
  distributed_graph g(n, edges, distribution::cyclic(n, 2));
  pmap::edge_property_map<double> w(g, [](const graph::edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 11, 10.0);
  });
  server srv(g, w, {.machine = {.n_ranks = 2}});

  const query q{.algo = algorithm::sssp, .params = {.source = 0}, .tenant = 7};
  auto r1 = srv.query(q);
  ASSERT_NE(r1, nullptr);
  const std::uint64_t v1 = srv.version();
  EXPECT_EQ(r1->graph_version, v1);

  // Warm hit at the same version: same shared result object.
  auto r2 = srv.query(q);
  EXPECT_EQ(r2.get(), r1.get());
  EXPECT_EQ(srv.cache().hits(), 1u);

  // Mutate: add a shortcut edge. The version moves and the old entry is
  // both unreachable (key mismatch) and reclaimed (invalidate_stale).
  const std::vector<graph::edge> extra = {{0, n - 1}};
  srv.apply_edges(extra, /*tenant=*/7);
  EXPECT_EQ(srv.version(), v1 + 1);
  EXPECT_GE(srv.cache().invalidations(), 1u);

  const std::uint64_t hits_before = srv.cache().hits();
  auto r3 = srv.query(q);
  ASSERT_NE(r3, nullptr);
  EXPECT_EQ(srv.cache().hits(), hits_before) << "stale checkout must miss";
  EXPECT_EQ(r3->graph_version, v1 + 1);
  EXPECT_NE(r3.get(), r1.get());

  // The added edge 0 -> n-1 makes n-1 at least as close as before.
  EXPECT_LE(r3->value_as_double(n - 1), r1->value_as_double(n - 1));

  // Tenant attribution saw the whole story.
  const auto t = srv.obs().tenant(7);
  EXPECT_EQ(t.queries, 3u);
  EXPECT_EQ(t.cache_hits, 1u);
  EXPECT_EQ(t.mutations, 1u);
  EXPECT_EQ(t.solves, 2u);
}

}  // namespace
}  // namespace dpg::serve
