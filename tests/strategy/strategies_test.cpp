// Tests for the fixed_point / once strategies and their interaction with
// work hooks and epochs.
#include "strategy/strategies.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "graph/generators.hpp"

namespace dpg::strategy {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;
using graph::vertex_id;
using pattern::assign;
using pattern::e_;
using pattern::instantiate;
using pattern::lit;
using pattern::make_action;
using pattern::out_edges_gen;
using pattern::property;
using pattern::trg;
using pattern::v_;
using pattern::when;

constexpr double kInf = std::numeric_limits<double>::infinity();

struct sssp_world {
  distributed_graph g;
  pmap::vertex_property_map<double> dist;
  pmap::edge_property_map<double> weight;
  pmap::lock_map locks;
  ampp::transport tp;
  std::unique_ptr<pattern::action_instance> relax;

  sssp_world(vertex_id n, std::vector<graph::edge> edges, ampp::rank_t ranks,
             std::uint64_t wseed = 5, double maxw = 7.0)
      : g(n, edges, distribution::cyclic(n, ranks)),
        dist(g, kInf),
        weight(g,
               [wseed, maxw](const edge_handle& e) {
                 return graph::edge_weight(e.src, e.dst, wseed, maxw);
               }),
        locks(g.dist(), pmap::lock_scheme::per_vertex),
        tp(ampp::transport_config{.n_ranks = ranks}) {
    property d(dist);
    property w(weight);
    relax = instantiate(tp, g, locks,
                        make_action("relax", out_edges_gen{},
                                    when(d(trg(e_)) > d(v_) + w(e_),
                                         assign(d(trg(e_)), d(v_) + w(e_)))));
  }

  // Sequential Dijkstra oracle over the same graph + weights.
  std::vector<double> dijkstra(vertex_id s) {
    const vertex_id n = g.num_vertices();
    std::vector<double> d(n, kInf);
    d[s] = 0;
    std::vector<bool> done(n, false);
    for (;;) {
      vertex_id best = graph::invalid_vertex;
      for (vertex_id v = 0; v < n; ++v)
        if (!done[v] && d[v] < kInf && (best == graph::invalid_vertex || d[v] < d[best]))
          best = v;
      if (best == graph::invalid_vertex) break;
      done[best] = true;
      for (const edge_handle e : g.out_edges(best))
        d[e.dst] = std::min(d[e.dst], d[best] + weight[e]);
    }
    return d;
  }
};

TEST(FixedPoint, SolvesSsspOnRandomGraph) {
  const vertex_id n = 120;
  sssp_world w(n, graph::erdos_renyi(n, 900, 3), 4);
  const auto oracle = w.dijkstra(0);
  w.dist[0] = 0.0;
  w.tp.run([&](ampp::transport_context& ctx) {
    std::vector<vertex_id> seeds;
    if (w.g.owner(0) == ctx.rank()) seeds.push_back(0);
    const result r = fixed_point(ctx, *w.relax, seeds);
    EXPECT_EQ(r.rounds, 1u);
    EXPECT_TRUE(r.changed());
    // The strategy drove the transport: its stats window saw the traffic.
    EXPECT_GT(r.stats_delta.core.messages_sent, 0u);
  });
  for (vertex_id v = 0; v < n; ++v) EXPECT_DOUBLE_EQ(w.dist[v], oracle[v]) << "v=" << v;
}

TEST(FixedPoint, UnreachableVerticesStayInfinite) {
  // Two disjoint paths: the second component must stay at infinity.
  std::vector<graph::edge> edges{{0, 1}, {1, 2}, {3, 4}};
  sssp_world w(5, edges, 2);
  w.dist[0] = 0.0;
  w.tp.run([&](ampp::transport_context& ctx) {
    std::vector<vertex_id> seeds;
    if (w.g.owner(0) == ctx.rank()) seeds.push_back(0);
    fixed_point(ctx, *w.relax, seeds);
  });
  EXPECT_EQ(w.dist[3], kInf);
  EXPECT_EQ(w.dist[4], kInf);
  EXPECT_LT(w.dist[2], kInf);
}

TEST(FixedPoint, IsIdempotent) {
  const vertex_id n = 40;
  sssp_world w(n, graph::erdos_renyi(n, 300, 9), 3);
  w.dist[0] = 0.0;
  w.tp.run([&](ampp::transport_context& ctx) {
    std::vector<vertex_id> seeds;
    if (w.g.owner(0) == ctx.rank()) seeds.push_back(0);
    fixed_point(ctx, *w.relax, seeds);
  });
  const std::uint64_t mods_first = w.relax->modifications();
  w.tp.run([&](ampp::transport_context& ctx) {
    std::vector<vertex_id> seeds;
    if (w.g.owner(0) == ctx.rank()) seeds.push_back(0);
    // Second run finds everything settled: result reports no change.
    EXPECT_FALSE(fixed_point(ctx, *w.relax, seeds).changed());
  });
  // Second run finds everything settled: no further modifications.
  EXPECT_EQ(w.relax->modifications(), mods_first);
}

TEST(Once, ReportsWhetherAnythingChanged) {
  const vertex_id n = 10;
  sssp_world w(n, graph::path_graph(n), 2, 5, 1.0);
  w.dist[0] = 0.0;
  w.tp.run([&](ampp::transport_context& ctx) {
    std::vector<vertex_id> mine;
    for_each_local_vertex(ctx, w.g, [&](vertex_id v) { mine.push_back(v); });
    // First sweep improves the frontier: must report a change.
    const result r = once(ctx, *w.relax, mine);
    EXPECT_TRUE(r.changed());
    EXPECT_GT(r.modifications, 0u);
    EXPECT_EQ(r.rounds, 1u);
  });
}

TEST(Once, DoesNotFollowDependencies) {
  // One `once` sweep from the source relaxes only direct neighbours on a
  // path (no recursive work), unlike fixed_point.
  const vertex_id n = 6;
  sssp_world w(n, graph::path_graph(n), 2, 5, 1.0);
  w.dist[0] = 0.0;
  w.tp.run([&](ampp::transport_context& ctx) {
    std::vector<vertex_id> seeds;
    if (w.g.owner(0) == ctx.rank()) seeds.push_back(0);
    once(ctx, *w.relax, seeds);
  });
  EXPECT_LT(w.dist[1], kInf);
  EXPECT_EQ(w.dist[2], kInf);  // dependency not followed
}

TEST(Once, FalseWhenNothingImproves) {
  const vertex_id n = 6;
  sssp_world w(n, graph::path_graph(n), 2);
  w.dist.fill(0.0);
  w.tp.run([&](ampp::transport_context& ctx) {
    std::vector<vertex_id> mine;
    for_each_local_vertex(ctx, w.g, [&](vertex_id v) { mine.push_back(v); });
    EXPECT_FALSE(once(ctx, *w.relax, mine).changed());
  });
}

TEST(OnceUntilQuiet, ConvergesInBoundedRounds) {
  // Sweeping all vertices with `once` until quiet is Bellman-Ford: at most
  // n-1 productive rounds on a path.
  const vertex_id n = 9;
  sssp_world w(n, graph::path_graph(n), 3, 5, 1.0);
  w.dist[0] = 0.0;
  w.tp.run([&](ampp::transport_context& ctx) {
    std::vector<vertex_id> mine;
    for_each_local_vertex(ctx, w.g, [&](vertex_id v) { mine.push_back(v); });
    const result r = once_until_quiet(ctx, *w.relax, mine);
    EXPECT_LE(r.rounds, static_cast<std::uint64_t>(n) - 1);
    EXPECT_GE(r.rounds, 1u);
    EXPECT_TRUE(r.changed());
  });
  for (vertex_id v = 0; v < n; ++v) EXPECT_DOUBLE_EQ(w.dist[v], static_cast<double>(v));
}

TEST(OnceUntilQuiet, RespectsMaxRounds) {
  const vertex_id n = 9;
  sssp_world w(n, graph::path_graph(n), 3, 5, 1.0);
  w.dist[0] = 0.0;
  w.tp.run([&](ampp::transport_context& ctx) {
    std::vector<vertex_id> mine;
    for_each_local_vertex(ctx, w.g, [&](vertex_id v) { mine.push_back(v); });
    options opt;
    opt.max_rounds = 2;
    EXPECT_EQ(once_until_quiet(ctx, *w.relax, mine, opt).rounds, 2u);
  });
  // Capped early: the far end of the path is not settled yet.
  EXPECT_EQ(w.dist[n - 1], kInf);
}

TEST(Options, CollectStatsCanBeDisabled) {
  const vertex_id n = 10;
  sssp_world w(n, graph::path_graph(n), 2, 5, 1.0);
  w.dist[0] = 0.0;
  w.tp.run([&](ampp::transport_context& ctx) {
    std::vector<vertex_id> seeds;
    if (w.g.owner(0) == ctx.rank()) seeds.push_back(0);
    options opt;
    opt.collect_stats = false;
    const result r = fixed_point(ctx, *w.relax, seeds, opt);
    EXPECT_TRUE(r.changed());
    // No stats window was captured: the delta stays default-constructed.
    EXPECT_EQ(r.stats_delta.core.messages_sent, 0u);
    EXPECT_TRUE(r.stats_delta.per_type.empty());
  });
}

TEST(ForEachLocalVertex, CoversAllVerticesExactlyOnce) {
  const vertex_id n = 23;
  sssp_world w(n, graph::path_graph(n), 4);
  std::vector<std::atomic<int>> seen(n);
  w.tp.run([&](ampp::transport_context& ctx) {
    for_each_local_vertex(ctx, w.g, [&](vertex_id v) { ++seen[v]; });
  });
  for (vertex_id v = 0; v < n; ++v) EXPECT_EQ(seen[v].load(), 1) << "v=" << v;
}

}  // namespace
}  // namespace dpg::strategy
