// Regression tests for the Δ-stepping bucket structure: the bucket_of
// clamp (non-finite / huge priorities previously hit a float→uint64_t
// cast with undefined behaviour and an unbounded rows_ resize) and the
// first-nonempty cursor (pop_any previously rescanned from row 0 on
// every call).
#include "strategy/buckets.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace dpg::strategy {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(BucketsTest, BucketOfFiniteValues) {
  buckets b(1.0);
  EXPECT_EQ(b.bucket_of(0.0), 0u);
  EXPECT_EQ(b.bucket_of(0.9), 0u);
  EXPECT_EQ(b.bucket_of(1.0), 1u);
  EXPECT_EQ(b.bucket_of(41.5), 41u);
}

TEST(BucketsTest, BucketOfClampsNonFiniteAndHuge) {
  buckets b(1.0);
  const std::uint64_t last = buckets::max_buckets - 1;
  EXPECT_EQ(b.bucket_of(kInf), last);
  EXPECT_EQ(b.bucket_of(std::numeric_limits<double>::quiet_NaN()), last);
  EXPECT_EQ(b.bucket_of(std::numeric_limits<double>::max()), last);
  EXPECT_EQ(b.bucket_of(1e30), last);
  // Exactly at the cap boundary clamps too (cast would be out of range).
  EXPECT_EQ(b.bucket_of(static_cast<double>(buckets::max_buckets)), last);
  // Just below the cap does not.
  EXPECT_EQ(b.bucket_of(static_cast<double>(buckets::max_buckets) - 1.0),
            buckets::max_buckets - 1);
}

TEST(BucketsTest, InsertHugePriorityIsBoundedAndPoppable) {
  // Before the clamp this resized rows_ to ~priority/Δ entries (or worse,
  // UB on the cast); now it files under the last bucket and stays poppable.
  buckets b(0.5);
  b.insert(graph::vertex_id{7}, kInf);
  b.insert(graph::vertex_id{8}, 1e300);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.first_nonempty(), buckets::max_buckets - 1);
  EXPECT_TRUE(b.pop_any().has_value());
  EXPECT_TRUE(b.pop_any().has_value());
  EXPECT_FALSE(b.pop_any().has_value());
}

TEST(BucketsTest, PopAnyReturnsLowestBucketFirst) {
  buckets b(1.0);
  b.insert(graph::vertex_id{3}, 5.0);
  b.insert(graph::vertex_id{1}, 1.0);
  b.insert(graph::vertex_id{2}, 3.0);
  EXPECT_EQ(b.pop_any(), graph::vertex_id{1});
  EXPECT_EQ(b.pop_any(), graph::vertex_id{2});
  EXPECT_EQ(b.pop_any(), graph::vertex_id{3});
  EXPECT_FALSE(b.pop_any().has_value());
}

TEST(BucketsTest, CursorRewindsOnLowerInsert) {
  // After draining low buckets the cursor sits high; inserting a lower
  // priority must rewind it so ordering stays correct.
  buckets b(1.0);
  b.insert(graph::vertex_id{10}, 100.0);
  b.insert(graph::vertex_id{11}, 100.0);
  EXPECT_EQ(b.first_nonempty(), 100u);
  EXPECT_EQ(b.pop_any(), graph::vertex_id{10});
  b.insert(graph::vertex_id{1}, 2.0);
  EXPECT_EQ(b.first_nonempty(), 2u);
  EXPECT_EQ(b.pop_any(), graph::vertex_id{1});
  EXPECT_EQ(b.pop_any(), graph::vertex_id{11});
}

TEST(BucketsTest, ClearResetsCursor) {
  buckets b(1.0);
  b.insert(graph::vertex_id{5}, 50.0);
  ASSERT_TRUE(b.pop_any().has_value());
  b.clear();
  EXPECT_TRUE(b.empty());
  b.insert(graph::vertex_id{6}, 0.0);
  EXPECT_EQ(b.first_nonempty(), 0u);
  EXPECT_EQ(b.pop_any(), graph::vertex_id{6});
}

TEST(BucketsTest, InterleavedPopAndIndexedAccess) {
  buckets b(2.0);
  b.insert(graph::vertex_id{1}, 0.0);   // bucket 0
  b.insert(graph::vertex_id{2}, 4.0);   // bucket 2
  b.insert(graph::vertex_id{3}, 4.5);   // bucket 2
  EXPECT_EQ(b.pop(2), graph::vertex_id{2});
  EXPECT_EQ(b.first_nonempty(), 0u);
  EXPECT_EQ(b.pop_any(), graph::vertex_id{1});
  EXPECT_EQ(b.first_nonempty(), 2u);
  EXPECT_EQ(b.pop_any(), graph::vertex_id{3});
  EXPECT_EQ(b.first_nonempty(), buckets::none);
}

}  // namespace
}  // namespace dpg::strategy
