// Δ-stepping strategy tests: correctness against Dijkstra for both the
// coordinated and the uncoordinated (try_finish) variants, across Δ values
// and rank counts; bucket-structure unit tests.
#include "strategy/delta_stepping.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <tuple>
#include <vector>

#include "graph/generators.hpp"

namespace dpg::strategy {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;
using graph::vertex_id;
using pattern::assign;
using pattern::e_;
using pattern::instantiate;
using pattern::make_action;
using pattern::out_edges_gen;
using pattern::property;
using pattern::trg;
using pattern::v_;
using pattern::when;

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// buckets unit tests
// ---------------------------------------------------------------------------

TEST(Buckets, FilesByPriorityOverDelta) {
  buckets B(2.0);
  EXPECT_EQ(B.bucket_of(0.0), 0u);
  EXPECT_EQ(B.bucket_of(1.99), 0u);
  EXPECT_EQ(B.bucket_of(2.0), 1u);
  EXPECT_EQ(B.bucket_of(9.5), 4u);
}

TEST(Buckets, FifoWithinBucket) {
  buckets B(1.0);
  B.insert(5, 0.1);
  B.insert(7, 0.2);
  B.insert(9, 0.3);
  EXPECT_EQ(B.pop(0).value(), 5u);
  EXPECT_EQ(B.pop(0).value(), 7u);
  EXPECT_EQ(B.pop(0).value(), 9u);
  EXPECT_FALSE(B.pop(0).has_value());
}

TEST(Buckets, FirstNonEmptyAndPopAny) {
  buckets B(1.0);
  EXPECT_EQ(B.first_nonempty(), buckets::none);
  B.insert(1, 5.5);
  B.insert(2, 2.5);
  EXPECT_EQ(B.first_nonempty(), 2u);
  EXPECT_EQ(B.pop_any().value(), 2u);  // lowest bucket first
  EXPECT_EQ(B.pop_any().value(), 1u);
  EXPECT_TRUE(B.empty());
}

TEST(Buckets, SizeTracksInsertsAndPops) {
  buckets B(1.0);
  for (int i = 0; i < 10; ++i) B.insert(i, static_cast<double>(i));
  EXPECT_EQ(B.size(), 10u);
  (void)B.pop_any();
  EXPECT_EQ(B.size(), 9u);
  B.clear();
  EXPECT_TRUE(B.empty());
}

// ---------------------------------------------------------------------------
// Δ-stepping end-to-end, parameterized over (ranks, Δ, uncoordinated)
// ---------------------------------------------------------------------------

using params = std::tuple<ampp::rank_t, double, bool>;

class DeltaSteppingCorrectness : public ::testing::TestWithParam<params> {};

TEST_P(DeltaSteppingCorrectness, MatchesDijkstra) {
  auto [ranks, delta, uncoordinated] = GetParam();
  const vertex_id n = 100;
  const auto edges = graph::erdos_renyi(n, 800, 21);

  distributed_graph g(n, edges, distribution::cyclic(n, ranks));
  pmap::vertex_property_map<double> dist(g, kInf);
  pmap::edge_property_map<double> weight(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 77, 9.0);
  });
  pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
  ampp::transport tp(ampp::transport_config{.n_ranks = ranks});
  property d(dist);
  property w(weight);
  auto relax = instantiate(tp, g, locks,
                           make_action("relax", out_edges_gen{},
                                       when(d(trg(e_)) > d(v_) + w(e_),
                                            assign(d(trg(e_)), d(v_) + w(e_)))));

  // Oracle.
  std::vector<double> oracle(n, kInf);
  {
    oracle[0] = 0;
    std::vector<bool> done(n, false);
    for (;;) {
      vertex_id best = graph::invalid_vertex;
      for (vertex_id v = 0; v < n; ++v)
        if (!done[v] && oracle[v] < kInf &&
            (best == graph::invalid_vertex || oracle[v] < oracle[best]))
          best = v;
      if (best == graph::invalid_vertex) break;
      done[best] = true;
      for (const edge_handle e : g.out_edges(best))
        oracle[e.dst] = std::min(oracle[e.dst], oracle[best] + weight[e]);
    }
  }

  dist[0] = 0.0;
  delta_stepping<double> ds(tp, g, *relax, dist, delta);
  tp.run([&](ampp::transport_context& ctx) {
    std::vector<vertex_id> seeds;
    if (g.owner(0) == ctx.rank()) seeds.push_back(0);
    if (uncoordinated)
      ds.run_uncoordinated(ctx, seeds);
    else
      ds.run(ctx, seeds);
  });
  for (vertex_id v = 0; v < n; ++v) ASSERT_DOUBLE_EQ(dist[v], oracle[v]) << "v=" << v;
}

std::string param_name(const ::testing::TestParamInfo<params>& info) {
  auto [ranks, delta, unc] = info.param;
  std::string d = std::to_string(static_cast<int>(delta * 10));
  return std::string(unc ? "unc" : "coord") + "_r" + std::to_string(ranks) + "_d" + d;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeltaSteppingCorrectness,
                         ::testing::Combine(::testing::Values<ampp::rank_t>(1, 2, 4),
                                            ::testing::Values(0.5, 2.0, 10.0, 1000.0),
                                            ::testing::Bool()),
                         param_name);

TEST(DeltaStepping, SmallDeltaUsesMoreEpochs) {
  // Bucket granularity drives synchronization: tiny Δ must consume many
  // more epochs than one huge bucket (the Q5 benchmark's mechanism).
  const vertex_id n = 80;
  const auto edges = graph::erdos_renyi(n, 600, 4);
  auto run_with = [&](double delta) {
    distributed_graph g(n, edges, distribution::cyclic(n, 2));
    pmap::vertex_property_map<double> dist(g, kInf);
    pmap::edge_property_map<double> weight(g, [](const edge_handle& e) {
      return graph::edge_weight(e.src, e.dst, 7, 5.0);
    });
    pmap::lock_map locks(g.dist(), pmap::lock_scheme::per_vertex);
    ampp::transport tp(ampp::transport_config{.n_ranks = 2});
    property d(dist);
    property w(weight);
    auto relax = instantiate(tp, g, locks,
                             make_action("relax", out_edges_gen{},
                                         when(d(trg(e_)) > d(v_) + w(e_),
                                              assign(d(trg(e_)), d(v_) + w(e_)))));
    dist[0] = 0.0;
    delta_stepping<double> ds(tp, g, *relax, dist, delta);
    tp.run([&](ampp::transport_context& ctx) {
      std::vector<vertex_id> seeds;
      if (g.owner(0) == ctx.rank()) seeds.push_back(0);
      ds.run(ctx, seeds);
    });
    return ds.epochs_used();
  };
  EXPECT_GT(run_with(0.25), run_with(1e9));
}

}  // namespace
}  // namespace dpg::strategy
