// Δ-stepping with multithreaded ranks: the scenario the paper describes in
// §II-A ("the Δ-stepping strategy has to provide a thread-safe buckets
// data structure") and §III-D. Work hooks now run on handler threads and
// insert into the owner's buckets concurrently with the SPMD thread
// popping them.
#include <gtest/gtest.h>

#include <limits>

#include "algo/baselines.hpp"
#include "algo/sssp.hpp"
#include "graph/generators.hpp"

namespace dpg::strategy {
namespace {

using graph::distributed_graph;
using graph::distribution;
using graph::edge_handle;
using graph::vertex_id;

class ConcurrentDelta : public ::testing::TestWithParam<int /*mode*/> {};

TEST_P(ConcurrentDelta, MatchesDijkstraWithHandlerThreads) {
  const int mode = GetParam();
  const vertex_id n = 200;
  const auto edges = graph::erdos_renyi(n, 1600, 77);
  distributed_graph g(n, edges, distribution::cyclic(n, 2));
  pmap::edge_property_map<double> weight(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 13, 12.0);
  });
  const auto oracle = algo::dijkstra(g, weight, 0);

  ampp::transport tp(ampp::transport_config{
      .n_ranks = 2, .coalescing_size = 16, .handler_threads = 2});
  algo::sssp_solver solver(tp, g, weight);
  for (int trial = 0; trial < 3; ++trial) {
    tp.run([&](ampp::transport_context& ctx) {
      if (mode == 0)
        solver.run_delta(ctx, 0, 6.0);
      else
        solver.run_delta_uncoordinated(ctx, 0, 6.0);
    });
    for (vertex_id v = 0; v < n; ++v)
      ASSERT_DOUBLE_EQ(solver.dist()[v], oracle[v])
          << "mode=" << mode << " trial=" << trial << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ConcurrentDelta, ::testing::Values(0, 1),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0 ? std::string("coordinated")
                                                  : std::string("uncoordinated");
                         });

TEST(ConcurrentDelta, ChaosFaultsAndThreadedTogether) {
  // Maximum hostility: reorder + duplicate + delay + drop-with-retry AND
  // concurrent handlers.
  const vertex_id n = 120;
  const auto edges = graph::erdos_renyi(n, 900, 5);
  distributed_graph g(n, edges, distribution::cyclic(n, 3));
  pmap::edge_property_map<double> weight(g, [](const edge_handle& e) {
    return graph::edge_weight(e.src, e.dst, 3, 9.0);
  });
  const auto oracle = algo::dijkstra(g, weight, 0);
  ampp::transport tp(ampp::transport_config{.n_ranks = 3,
                                            .coalescing_size = 8,
                                            .seed = 31,
                                            .faults = ampp::fault_plan::chaos(31),
                                            .handler_threads = 1});
  algo::sssp_solver solver(tp, g, weight);
  strategy::result res;
  tp.run([&](ampp::transport_context& ctx) {
    const strategy::result r = solver.run_delta(ctx, 0, 4.0);
    if (ctx.rank() == 0) res = r;  // counters are global; rank 0's copy suffices
  });
  for (vertex_id v = 0; v < n; ++v) ASSERT_DOUBLE_EQ(solver.dist()[v], oracle[v]);
  EXPECT_GT(res.faults_survived(), 0u);  // the chaos plan must have fired
}

}  // namespace
}  // namespace dpg::strategy
